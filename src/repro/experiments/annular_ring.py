"""Parameterized annular-ring problem builder (paper §4.2).

Geometry: a 2-m-wide channel opening into a radius-2 chamber with a
concentric inner cylinder whose radius ``r_i`` is the geometry parameter
(``r_i ∈ [0.75, 1.1]``).  The network takes ``(x, y, r_i)`` and validation
compares against the reference solver at ``r_i ∈ {1.0, 0.875, 0.75}``,
averaged — exactly the protocol of Table 2 / Figure 3.
"""

from __future__ import annotations

import numpy as np

from ..geometry import (
    Channel2D, Circle, Line2D, ParamSpace, ParameterizedGeometry,
)
from ..pde import NavierStokes2D
from ..solvers import ANNULUS_DEFAULTS, get_or_compute, solve_annulus
from ..training import BoundaryConstraint, InteriorConstraint, PointwiseValidator
from ..utils import bilinear_interpolate

__all__ = ["annular_ring_geometry", "build_ar_problem", "ar_validators",
           "ar_reference", "PARAM_NAMES"]

OUTPUT_NAMES = ("u", "v", "p")
PARAM_NAMES = ("r_inner",)
_CFG = ANNULUS_DEFAULTS


def annular_ring_geometry(r_inner):
    """Concrete channel + ring geometry for a given inner radius."""
    channel = Channel2D((_CFG["x_min"], -_CFG["channel_half_width"]),
                        (_CFG["x_max"], _CFG["channel_half_width"]))
    chamber = Circle((0.0, 0.0), _CFG["outer_radius"])
    hole = Circle((0.0, 0.0), float(r_inner))
    return (channel + chamber) - hole


def _geometry_family(config):
    space = ParamSpace({"r_inner": config.r_inner_range})
    return ParameterizedGeometry(
        lambda p: annular_ring_geometry(p["r_inner"]), space,
        draws=config.param_draws)


def _attach_params(cloud, space, rng):
    """Give a parameter-independent cloud random parameter columns."""
    cloud.params = space.sample(len(cloud), rng)
    cloud.param_names = space.names
    return cloud


def inlet_profile(y, peak):
    """Parabolic inlet ``u(y)`` with the given peak velocity."""
    half = _CFG["channel_half_width"]
    return peak * np.maximum(0.0, 1.0 - (y / half) ** 2)


def ar_reference(config, r_inner):
    """Cached reference annulus fields for one inner radius."""
    key = (f"ar_r{r_inner:g}_nx{config.reference_nx}_ny{config.reference_ny}"
           f"_nu{config.nu:g}")

    def builder():
        result = solve_annulus(inner_radius=r_inner, nx=config.reference_nx,
                               ny=config.reference_ny, nu=config.nu,
                               inlet_peak_velocity=config.inlet_peak_velocity)
        return {"xs": result.xs, "ys": result.ys, "u": result.u,
                "v": result.v, "p": result.p,
                "mask": result.mask.astype(np.float64)}

    return get_or_compute(key, builder)


def ar_validators(config, rng):
    """One validator per validation radius (errors averaged by the trainer)."""
    validators = []
    for r_inner in config.validation_radii:
        reference = ar_reference(config, r_inner)
        geometry = annular_ring_geometry(r_inner)
        cloud = geometry.sample_interior(config.n_validation, rng)
        # keep points away from the staircase mask edge of the reference
        dx = reference["xs"][1] - reference["xs"][0]
        keep = cloud.sdf.ravel() > 2.0 * dx
        points = cloud.coords[keep]

        def interp(name, pts=points, ref=reference):
            return bilinear_interpolate(ref["xs"], ref["ys"], ref[name], pts)

        features = np.concatenate(
            [points, np.full((len(points), 1), r_inner)], axis=1)
        validators.append(PointwiseValidator(
            f"ar_r{r_inner:g}", features,
            {"u": interp("u"), "v": interp("v"), "p": interp("p")},
            OUTPUT_NAMES, param_names=PARAM_NAMES))
    return validators


def build_ar_problem(config, n_interior, rng):
    """Construct clouds and constraints for one annular-ring run."""
    family = _geometry_family(config)
    space = family.param_space
    interior = family.sample_interior(n_interior, rng)
    walls = family.sample_boundary(config.n_boundary, rng)

    half = _CFG["channel_half_width"]
    inlet_line = Line2D((_CFG["x_min"], -half), (_CFG["x_min"], half),
                        normal_side="left")
    outlet_line = Line2D((_CFG["x_max"], -half), (_CFG["x_max"], half),
                         normal_side="right")
    inlet = _attach_params(inlet_line.sample_boundary(
        config.n_inlet_outlet, rng), space, rng)
    outlet = _attach_params(outlet_line.sample_boundary(
        config.n_inlet_outlet, rng), space, rng)

    pde = NavierStokes2D(nu=config.nu, full_diffusion=config.full_diffusion)
    peak = config.inlet_peak_velocity

    constraints = [
        InteriorConstraint("interior", interior, pde, batch_size=0,
                           sdf_weighting=True),
        BoundaryConstraint("walls", walls, OUTPUT_NAMES,
                           {"u": 0.0, "v": 0.0},
                           batch_size=0, weight=config.boundary_weight),
        BoundaryConstraint("inlet", inlet, OUTPUT_NAMES,
                           {"u": lambda c, p: inlet_profile(c[:, 1], peak),
                            "v": 0.0},
                           batch_size=0, weight=config.boundary_weight),
        BoundaryConstraint("outlet", outlet, OUTPUT_NAMES,
                           {"p": 0.0},
                           batch_size=0, weight=config.boundary_weight),
    ]
    return {"interior_cloud": interior, "constraints": constraints,
            "output_names": OUTPUT_NAMES, "param_space": space}
