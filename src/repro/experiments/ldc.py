"""LDC_zeroEq problem builder (paper §4.1).

Assembles geometry, constraints, and the validator for the lid-driven cavity
with zero-equation turbulence.  The reference solution comes from
:func:`repro.solvers.solve_ldc` (cached), replacing the paper's OpenFOAM
fields; the validated variables are ``u``, ``v``, and ``nu`` exactly as in
Table 1.
"""

from __future__ import annotations

from ..geometry import Rectangle
from ..pde import NavierStokes2D, ZeroEquationTurbulence
from ..solvers import get_or_compute, solve_ldc
from ..training import BoundaryConstraint, InteriorConstraint, PointwiseValidator
from ..utils import bilinear_interpolate

__all__ = ["build_ldc_problem", "ldc_reference", "ldc_validator"]

OUTPUT_NAMES = ("u", "v", "p")


def ldc_reference(config):
    """Cached reference LDC fields (u, v, nu_t on the solver grid)."""
    key = (f"ldc_re{config.reynolds:g}_res{config.reference_resolution}"
           f"_turb{int(config.turbulent)}")

    def builder():
        result = solve_ldc(reynolds=config.reynolds,
                           resolution=config.reference_resolution,
                           lid_velocity=config.lid_velocity,
                           turbulent=config.turbulent)
        return {"xs": result.xs, "ys": result.ys, "u": result.u,
                "v": result.v, "p": result.p, "nu_t": result.nu_t}

    return get_or_compute(key, builder)


def ldc_validator(config, rng):
    """Pointwise validator over interior validation points."""
    reference = ldc_reference(config)
    geometry = Rectangle((0.0, 0.0), (1.0, 1.0))
    cloud = geometry.sample_interior(config.n_validation, rng)
    points = cloud.coords

    def interp(field):
        return bilinear_interpolate(reference["xs"], reference["ys"],
                                    reference[field], points)

    references = {"u": interp("u"), "v": interp("v")}
    derived = {}
    if config.turbulent:
        closure = ZeroEquationTurbulence(max_distance=0.5)
        references["nu"] = interp("nu_t")
        derived["nu"] = closure.nu_t
    return PointwiseValidator("ldc", points, references, OUTPUT_NAMES,
                              derived=derived, sdf=cloud.sdf)


def build_ldc_problem(config, n_interior, rng):
    """Construct clouds and constraints for one LDC training run.

    Returns
    -------
    dict with keys ``interior_cloud``, ``constraints``, ``output_names``.
    """
    geometry = Rectangle((0.0, 0.0), (1.0, 1.0))
    interior = geometry.sample_interior(n_interior, rng)
    boundary = geometry.sample_boundary(config.n_boundary, rng)
    eps = 1e-9
    lid = boundary.filter(lambda c: c[:, 1] > 1.0 - eps)
    walls = boundary.filter(lambda c: c[:, 1] <= 1.0 - eps)

    nu = config.lid_velocity / config.reynolds
    turbulence = (ZeroEquationTurbulence(max_distance=0.5)
                  if config.turbulent else None)
    pde = NavierStokes2D(nu=nu, turbulence=turbulence,
                         full_diffusion=config.full_diffusion)

    constraints = [
        InteriorConstraint("interior", interior, pde,
                           batch_size=0,  # set by the runner per method
                           sdf_weighting=True),
        BoundaryConstraint("lid", lid, OUTPUT_NAMES,
                           {"u": config.lid_velocity, "v": 0.0},
                           batch_size=0, weight=config.boundary_weight),
        BoundaryConstraint("noslip", walls, OUTPUT_NAMES,
                           {"u": 0.0, "v": 0.0},
                           batch_size=0, weight=config.boundary_weight),
    ]
    return {"interior_cloud": interior, "constraints": constraints,
            "output_names": OUTPUT_NAMES}
