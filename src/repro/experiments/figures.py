"""Figure regeneration: error-vs-time curves (Fig. 2/3) and pressure-error
fields (Fig. 4), emitted as CSV series plus ASCII charts."""

from __future__ import annotations

import csv

import numpy as np

from ..pde import Fields
from ..utils import ascii_plot
from .annular_ring import PARAM_NAMES, ar_reference

__all__ = ["error_curves", "curves_to_csv", "render_curves",
           "pressure_error_fields"]


def error_curves(histories, var="v"):
    """Extract ``{label: (wall_times, errors)}`` for one variable."""
    return {label: history.error_series(var)
            for label, history in histories.items()}


def curves_to_csv(curves, path):
    """Write the figure series in long format (label, wall_time, error)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["label", "wall_time", "error"])
        for label, (times, errors) in curves.items():
            for t, e in zip(times, errors):
                writer.writerow([label, t, e])


def render_curves(curves, title, logy=True):
    """ASCII rendering of a figure (used by the bench harness stdout)."""
    series = [(times, errors, label)
              for label, (times, errors) in curves.items() if len(times)]
    return ascii_plot(series, logy=logy, title=title)


def pressure_error_fields(results, config, r_inner=1.0):
    """Figure 4: absolute pressure-error field per method at ``r_inner``.

    Parameters
    ----------
    results:
        ``{label: RunResult}`` with trained networks.
    config:
        The annular-ring config (for the reference grid).

    Returns
    -------
    dict with the grid (``xs``, ``ys``, ``mask``) and, per method label,
    the absolute-error field (NaN outside the fluid) and its mean.
    """
    reference = ar_reference(config, r_inner)
    mask = reference["mask"] > 0.5
    gx, gy = np.meshgrid(reference["xs"], reference["ys"])
    points = np.stack([gx[mask], gy[mask]], axis=1)
    features = np.concatenate(
        [points, np.full((len(points), 1), r_inner)], axis=1)

    out = {"xs": reference["xs"], "ys": reference["ys"], "mask": mask,
           "fields": {}, "mean_abs_error": {}}
    for label, result in results.items():
        fields = Fields.from_features(features, param_names=PARAM_NAMES)
        outputs = result.net(fields.input_tensor())
        p_pred = outputs.numpy()[:, 2]
        error = np.abs(p_pred - reference["p"][mask])
        field = np.full(mask.shape, np.nan)
        field[mask] = error
        out["fields"][label] = field
        out["mean_abs_error"][label] = float(error.mean())
    return out
