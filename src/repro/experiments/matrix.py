"""Cross-problem benchmark matrix on one shared execution backend.

The paper's headline evidence is method-sweep tables across *several*
workloads; importance-sampling baselines are only credible when compared
over many PDEs (Nabian et al. 2021, DMIS).  :func:`run_matrix` resolves a
problems × samplers grid into cells — one :class:`~repro.api.MethodSpec`
per (problem, sampler) — and submits **all** cells to one shared
:mod:`repro.exec` backend via the same task construction ``run_suite``
uses, so a 5-problem × 4-sampler matrix saturates a local pool (or a
``repro worker`` fleet) instead of running five sequential suites.

Every cell is built from exactly the task tuple :func:`run_suite` would
build for the same problem, so each cell's loss/error trajectory is
bit-identical to the corresponding standalone suite cell (parity-tested).
With ``store=`` every cell records its own durable run into a single
:class:`repro.store.RunStore`, from which ``repro runs plot`` /
``repro runs compare`` regenerate the convergence-vs-time figures and
cross-problem speedup rows without any live objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..api.registry import problem_registry
from ..exec import resolve_backend
from .suite import (SuiteResult, _backend_choice, _make_task, _train_method,
                    resolve_methods)
from .tables import suite_table

__all__ = ["MatrixResult", "matrix_table", "resolve_problems", "run_matrix"]


def resolve_problems(problems=None):
    """Normalise ``problems`` into registered names.

    ``None`` or ``"all"`` expands to every registered problem; a comma
    string splits; every name is validated against the registry (failing
    fast with the registry's error).  Duplicates are rejected — they would
    collide in the result grid.
    """
    if problems is None or problems == "all":
        return problem_registry.names()
    if isinstance(problems, str):
        problems = [p.strip() for p in problems.split(",") if p.strip()]
    names = []
    for name in problems:
        problem_registry.get(name)
        names.append(name)
    if not names:
        raise ValueError("matrix needs at least one problem")
    duplicates = sorted({n for n in names if names.count(n) > 1})
    if duplicates:
        raise ValueError(f"duplicate problems {duplicates} in matrix")
    return names


@dataclass
class MatrixResult:
    """All cells of one problems × samplers grid, grouped per problem.

    ``suites`` maps each problem name to a :class:`SuiteResult` whose
    methods are in spec order; ``total_seconds`` is the wall time of the
    whole grid on the shared backend (each embedded suite's
    ``total_seconds`` is the sum of its cells' training time, since the
    cells did not run as an isolated sweep).
    """

    backend: str
    suites: dict
    total_seconds: float
    scale: str = "repro"
    store_root: str = field(repr=False, default=None)
    #: grid-level span/metric export (every cell adopted under a
    #: ``suite.cell`` span) when the grid ran with ``trace=True``
    obs: dict = field(repr=False, default=None)

    @property
    def executor(self):
        """Alias for :attr:`backend` (the field's pre-``repro.exec`` name)."""
        return self.backend

    @property
    def problems(self):
        return list(self.suites)

    @property
    def n_cells(self):
        return sum(len(suite) for suite in self.suites.values())

    def __len__(self):
        return self.n_cells

    def __getitem__(self, problem):
        try:
            return self.suites[problem]
        except KeyError:
            raise KeyError(f"unknown problem {problem!r} in matrix; "
                           f"have {self.problems}") from None

    def __iter__(self):
        return iter(self.suites.values())

    def cells(self):
        """``(problem, MethodResult)`` pairs in grid order."""
        for problem, suite in self.suites.items():
            for method in suite:
                yield problem, method

    def labels(self):
        """``{problem: [column labels]}`` of the grid."""
        return {problem: suite.labels
                for problem, suite in self.suites.items()}

    def histories(self):
        """``{problem: {label: History}}`` for figures/tables."""
        return {problem: suite.histories()
                for problem, suite in self.suites.items()}

    def run_ids(self):
        """Store record ids of every cell (``None`` entries dropped)."""
        return [m.run_id for _, m in self.cells() if m.run_id is not None]


def matrix_table(matrix, title=None):
    """Render a :class:`MatrixResult` as one aligned table per problem."""
    if title is None:
        title = (f"Benchmark matrix ({len(matrix.problems)} problems x "
                 f"{max((len(s) for s in matrix), default=0)} methods, "
                 f"backend={matrix.backend})")
    blocks = [title]
    for problem, suite in matrix.suites.items():
        blocks.append(suite_table(suite, title=f"[{problem}] min errors "
                                               f"and time-to-threshold [s]"))
    return "\n\n".join(blocks)


def run_matrix(problems=None, methods=None, *, backend=None, executor=None,
               max_workers=None, workers_external=False, seed=None,
               steps=None, scale="repro", configs=None, n_interior=None,
               batch_size=None, validators=None, verbose=False, store=None,
               checkpoint_every=None, compile=False, trace=False):
    """Train a problems × samplers benchmark matrix on one shared backend.

    Parameters
    ----------
    problems:
        ``None``/``"all"`` (every registered problem), a comma string, or
        a list of problem-registry names — see :func:`resolve_problems`.
    methods:
        ``None`` (all registered samplers), sampler names, or
        :class:`MethodSpec` objects; resolved *per problem config* via
        :func:`resolve_methods`, so column labels follow each problem's
        batch size.
    backend:
        ``"serial"``, ``"process"``, ``"queue"``, a registered custom
        name, or a ready :class:`~repro.exec.ExecutionBackend` (default
        ``"process"``).  Every cell of the grid goes to one shared
        backend — a 5 × 4 matrix keeps a local pool or a ``repro
        worker`` fleet saturated instead of running five sequential
        suites.
    executor:
        Deprecated alias for ``backend`` (same names); warns.
    max_workers:
        Shared worker-fleet size (default: ``min(n_cells, cpu_count)``).
    workers_external:
        Queue backend only: rely on separately launched ``repro worker``
        processes instead of spawning a local fleet.
    seed:
        Run seed shared by all cells (default: each problem's
        ``config.seed`` — the same default the standalone suite uses,
        preserving per-cell parity).
    steps:
        Optimizer steps per cell (default: each problem's config).
    scale:
        Config scale preset for every problem without an entry in
        ``configs``.
    configs:
        Optional ``{problem: config}`` overrides.
    store:
        Optional :class:`repro.store.RunStore` (or root path): every cell
        — including each pool/queue worker — records its own durable
        run into this single store.  Required by the queue backend (its
        job records live in the store).
    compile:
        Train every cell with record-once/replay-many tape execution
        (bit-identical to eager; automatic per-cell eager fallback).
    trace:
        Record :mod:`repro.obs` spans/metrics: every cell traces itself
        (workers ship the data back), the grid adopts them under
        ``suite.cell`` spans, and the merged export lands on
        :attr:`MatrixResult.obs` — per-cell utilization for the shared
        backend, plus per-run ``spans.jsonl`` when ``store`` is given.

    Returns
    -------
    :class:`MatrixResult` with per-problem suites in grid order; each
    cell is bit-identical to the corresponding ``run_suite`` cell.

    Examples
    --------
    >>> from repro.experiments import run_matrix
    >>> matrix = run_matrix(["burgers", "poisson3d"], ["uniform"],
    ...                     backend="serial", scale="smoke", steps=2,
    ...                     validators=[])
    >>> matrix.problems
    ['burgers', 'poisson3d']
    >>> matrix.n_cells
    2
    """
    names = resolve_problems(problems)
    configs = dict(configs or {})
    store_root = None
    if store is not None:
        from ..store import RunStore
        store_root = str(RunStore.coerce(store).root)
    backend = _backend_choice(backend, executor, "process", "run_matrix")
    exec_backend = resolve_backend(backend, max_workers=max_workers,
                                   store=store_root,
                                   workers_external=workers_external)
    backend_name = exec_backend.name or type(exec_backend).__name__

    tasks, labels, grid = [], [], []
    for name in names:
        entry = problem_registry.get(name)
        config = configs.get(name)
        if config is None:
            config = entry.config_factory(scale)
        specs = resolve_methods(config, methods, n_interior=n_interior,
                                batch_size=batch_size)
        cell_seed = config.seed if seed is None else int(seed)
        grid.append((entry.name, config, specs, cell_seed, len(tasks)))
        for spec in specs:
            tasks.append(_make_task(entry.name, config, spec, cell_seed,
                                    steps, validators,
                                    verbose and exec_backend.inline,
                                    store_root, checkpoint_every, compile,
                                    trace))
            labels.append(f"{entry.name}:{config.scale}:{spec.label}")

    matrix_tracer = obs.Tracer() if trace else None
    with obs.stopwatch() as total_timer:
        if matrix_tracer is None:
            results = exec_backend.submit(_train_method, tasks, labels,
                                          verbose=verbose)
        else:
            with matrix_tracer.span("matrix.run", cells=len(tasks),
                                    backend=backend_name) as root:
                results = exec_backend.submit(_train_method, tasks, labels,
                                              verbose=verbose)
                exec_backend.adopt_into(matrix_tracer, root.span_id, labels,
                                        results)

    suites = {}
    for name, config, specs, cell_seed, start in grid:
        cells = results[start:start + len(specs)]
        suites[name] = SuiteResult(
            problem=name, backend=backend_name, methods=cells,
            total_seconds=sum(m.wall_seconds for m in cells),
            seed=cell_seed, config=config)
    return MatrixResult(backend=backend_name, suites=suites,
                        total_seconds=total_timer.seconds, scale=scale,
                        store_root=store_root,
                        obs=(None if matrix_tracer is None
                             else matrix_tracer.export()))
