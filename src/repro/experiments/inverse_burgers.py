"""Inverse-viscosity problem builder (the data-assimilation workload).

The paper's introduction motivates PINNs through "inverse or data
assimilation problems": recover an unknown physical coefficient from sparse
measurements.  Here the Burgers travelling wave generated at
``config.true_nu`` is observed at ``config.n_sensors`` scattered space-time
sensor locations; the network and a softplus-positive
:class:`~repro.pde.TrainableCoefficient` (started at ``config.nu_initial``)
are fitted jointly so the PDE residual and the
:class:`~repro.training.DataConstraint` measurement misfit both vanish —
which only happens at the true viscosity.

The builder returns the coefficient under ``extra_modules`` so the engine
(:func:`repro.api.run_problem`) folds its parameter into the optimizer and
the run store checkpoints its state alongside the network — interrupted
inverse runs resume bit-identically, coefficient included.
"""

from __future__ import annotations

from ..geometry import PointCloud, Rectangle
from ..pde import Burgers1D, TrainableCoefficient, burgers_travelling_wave
from ..training import (
    CoefficientValidator, DataConstraint, InteriorConstraint,
    PointwiseValidator,
)

__all__ = ["build_inverse_burgers_problem", "inverse_burgers_exact",
           "inverse_burgers_validators", "OUTPUT_NAMES", "SPATIAL_NAMES"]

OUTPUT_NAMES = ("u",)
SPATIAL_NAMES = ("x", "t")

#: the (x, t) space-time domain: x in [-1, 1], t in [0, 1]
DOMAIN = ((-1.0, 0.0), (1.0, 1.0))


def inverse_burgers_exact(config, x, t):
    """The wave the sensors observed (at the *true* viscosity)."""
    return burgers_travelling_wave(x, t, config.true_nu,
                                   amplitude=config.amplitude,
                                   speed=config.speed)


def inverse_burgers_validators(config, coefficient, rng):
    """Field error against the observed wave + coefficient recovery error.

    ``err(u)`` is the usual relative L2 against the exact travelling wave;
    ``err(nu)`` is ``|recovered - true| / true`` read live from the
    coefficient, so the history shows the viscosity converging.
    """
    lo, hi = DOMAIN
    points = rng.uniform(lo, hi, (config.n_validation, 2))
    exact = inverse_burgers_exact(config, points[:, 0], points[:, 1])
    return [
        PointwiseValidator("inverse_burgers", points, {"u": exact},
                           OUTPUT_NAMES, spatial_names=SPATIAL_NAMES),
        CoefficientValidator(coefficient, config.true_nu, name="nu"),
    ]


def build_inverse_burgers_problem(config, n_interior, rng):
    """Construct clouds, constraints, and the trainable coefficient.

    Returns
    -------
    dict with the usual builder keys (``interior_cloud``, ``constraints``,
    ``output_names``, ``spatial_names``) plus ``extra_modules`` mapping
    ``"nu"`` to the :class:`~repro.pde.TrainableCoefficient` the interior
    PDE closes over.
    """
    domain = Rectangle(*DOMAIN)
    interior = domain.sample_interior(n_interior, rng)

    lo, hi = DOMAIN
    sensor_coords = rng.uniform(lo, hi, (config.n_sensors, 2))
    sensors = PointCloud(coords=sensor_coords)
    measurements = inverse_burgers_exact(config, sensor_coords[:, 0],
                                         sensor_coords[:, 1])

    nu = TrainableCoefficient(config.nu_initial, positive=True, name="nu",
                              dtype=config.network.dtype)
    constraints = [
        InteriorConstraint("interior", interior, Burgers1D(nu=nu),
                           batch_size=0, sdf_weighting=False,
                           spatial_names=SPATIAL_NAMES),
        DataConstraint("sensors", sensors, OUTPUT_NAMES,
                       {"u": measurements},
                       batch_size=0, weight=config.data_weight,
                       spatial_names=SPATIAL_NAMES),
    ]
    return {"interior_cloud": interior, "constraints": constraints,
            "output_names": OUTPUT_NAMES, "spatial_names": SPATIAL_NAMES,
            "extra_modules": {"nu": nu}}
