"""3-D Navier-Stokes problem builder (outputs ``u, v, w, p``).

The third velocity component ``w`` is the ROADMAP workload the trainer's
dimension-agnostic probes were built for: gradient-norm probes sweep
``(u, v, w)`` over ``(x, y, z)`` with no problem-specific wiring.

Validation uses the manufactured **Beltrami (ABC) flow**

    u = A sin(k z) + C cos(k y)
    v = B sin(k x) + A cos(k z)
    w = C sin(k y) + B cos(k x)
    p = -rho/2 (u^2 + v^2 + w^2)

which is divergence-free with vorticity ``curl U = k U``, so the convection
term is a pure gradient absorbed by ``p`` — an exact steady *Euler*
solution.  Its viscous defect ``-nu lap U = nu k^2 U`` is supplied back as
the body force ``f = nu k^2 U`` through ``Constraint.field_sources``
(fields ``f_u``/``f_v``/``f_w``), making the flow an exact solution of the
forced Navier-Stokes system at any viscosity.  Dirichlet walls carry the
exact velocity *and* pressure (pinning the pressure gauge, which momentum
alone leaves free).
"""

from __future__ import annotations

import numpy as np

from ..geometry import Box
from ..pde import NavierStokes3D
from ..training import (
    BoundaryConstraint, InteriorConstraint, PointwiseValidator,
)

__all__ = ["build_ns3d_problem", "ns3d_exact", "ns3d_validator",
           "OUTPUT_NAMES", "SPATIAL_NAMES"]

OUTPUT_NAMES = ("u", "v", "w", "p")
SPATIAL_NAMES = ("x", "y", "z")


def _exact_velocity(config, var, x, y, z):
    """One velocity component of the Beltrami field (cheap: 2 trig arrays).

    Per-batch sources/targets that need a single component call this
    instead of :func:`ns3d_exact`, which evaluates all four fields.
    """
    a, b, c = config.amplitudes
    k = config.wavenumber
    if var == "u":
        return a * np.sin(k * np.asarray(z)) + c * np.cos(k * np.asarray(y))
    if var == "v":
        return b * np.sin(k * np.asarray(x)) + a * np.cos(k * np.asarray(z))
    return c * np.sin(k * np.asarray(y)) + b * np.cos(k * np.asarray(x))


def ns3d_exact(config, x, y, z):
    """The Beltrami field as ``{"u": ..., "v": ..., "w": ..., "p": ...}``."""
    u = _exact_velocity(config, "u", x, y, z)
    v = _exact_velocity(config, "v", x, y, z)
    w = _exact_velocity(config, "w", x, y, z)
    p = -0.5 * (u ** 2 + v ** 2 + w ** 2)
    return {"u": u, "v": v, "w": w, "p": p}


def ns3d_validator(config, rng):
    """Pointwise validator against the manufactured Beltrami solution."""
    points = rng.uniform(0.0, 1.0, (config.n_validation, 3))
    exact = ns3d_exact(config, points[:, 0], points[:, 1], points[:, 2])
    return PointwiseValidator("ns3d", points, exact, OUTPUT_NAMES,
                              spatial_names=SPATIAL_NAMES)


def _forcing_sources(config):
    """``f = nu k^2 U`` per momentum component, via ``field_sources``."""
    factor = config.nu * config.wavenumber ** 2

    def component(var):
        def source(coords, params):
            return factor * _exact_velocity(config, var, coords[:, 0],
                                            coords[:, 1], coords[:, 2])
        return source

    return {"f_u": component("u"), "f_v": component("v"),
            "f_w": component("w")}


def build_ns3d_problem(config, n_interior, rng):
    """Construct clouds and constraints for one 3-D Navier-Stokes run.

    Returns
    -------
    dict with keys ``interior_cloud``, ``constraints``, ``output_names``,
    ``spatial_names`` (same shape as the other problem builders).
    """
    cube = Box((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
    interior = cube.sample_interior(n_interior, rng)
    boundary = cube.sample_boundary(config.n_boundary, rng)

    def wall_data(var):
        def target(coords, params):
            x, y, z = coords[:, 0], coords[:, 1], coords[:, 2]
            if var == "p":
                return ns3d_exact(config, x, y, z)["p"]
            return _exact_velocity(config, var, x, y, z)
        return target

    constraints = [
        InteriorConstraint("interior", interior, NavierStokes3D(config.nu),
                           batch_size=0, sdf_weighting=False,
                           spatial_names=SPATIAL_NAMES,
                           field_sources=_forcing_sources(config)),
        BoundaryConstraint("walls", boundary, OUTPUT_NAMES,
                           {var: wall_data(var) for var in OUTPUT_NAMES},
                           batch_size=0, weight=config.boundary_weight,
                           spatial_names=SPATIAL_NAMES),
    ]
    return {"interior_cloud": interior, "constraints": constraints,
            "output_names": OUTPUT_NAMES, "spatial_names": SPATIAL_NAMES}
