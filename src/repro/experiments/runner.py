"""Experiment runner: trains every method of Table 1 / Table 2.

Each method trains an identically initialised network on the same problem;
only the sampler (and, per the paper, dataset/batch size) differs:

* ``U_small``  — uniform sampling, reduced batch & dataset (paper: U500/U1024)
* ``U_large``  — uniform sampling, large batch & dataset (paper: U4000/U4096)
* ``MIS``      — Modulus-style pointwise importance sampling, reduced sizes
* ``SGM``      — SGM-PINN without the stability term (S1+S2+S4)
* ``SGM-S``    — SGM-PINN with the ISR stability term (S1-S4)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn import Adam, ExponentialDecayLR, FullyConnected
from ..sampling import MISSampler, SGMSampler, UniformSampler
from ..training import Trainer
from .annular_ring import ar_validators, build_ar_problem
from .ldc import build_ldc_problem, ldc_validator

__all__ = ["MethodSpec", "RunResult", "run_ldc_method", "run_ar_method",
           "run_ldc_suite", "run_ar_suite", "ldc_methods", "ar_methods"]


@dataclass
class MethodSpec:
    """One column of a results table."""

    label: str
    kind: str              # uniform | mis | sgm | sgm_s
    n_interior: int
    batch_size: int


@dataclass
class RunResult:
    """Trained artefacts for one method."""

    label: str
    history: object
    net: object
    sampler: object
    config: object = field(repr=False, default=None)


def ldc_methods(config):
    """The four Table-1 columns at this config's scale."""
    return [
        MethodSpec(f"U{config.batch_small}", "uniform",
                   config.n_interior_small, config.batch_small),
        MethodSpec(f"U{config.batch_large}", "uniform",
                   config.n_interior_large, config.batch_large),
        MethodSpec(f"MIS{config.batch_small}", "mis",
                   config.n_interior_small, config.batch_small),
        MethodSpec(f"SGM{config.batch_small}", "sgm",
                   config.n_interior_small, config.batch_small),
    ]


def ar_methods(config, include_plain_sgm=False):
    """The Table-2 columns (+ the Figure-3-only plain SGM variant)."""
    methods = [
        MethodSpec(f"U{config.batch_small}", "uniform",
                   config.n_interior_small, config.batch_small),
        MethodSpec(f"U{config.batch_large}", "uniform",
                   config.n_interior_large, config.batch_large),
        MethodSpec(f"MIS{config.batch_small}", "mis",
                   config.n_interior_small, config.batch_small),
    ]
    if include_plain_sgm:
        methods.append(MethodSpec(f"SGM{config.batch_small}", "sgm",
                                  config.n_interior_small,
                                  config.batch_small))
    methods.append(MethodSpec(f"SGM-S{config.batch_small}", "sgm_s",
                              config.n_interior_small, config.batch_small))
    return methods


def _make_sampler(method, config, interior_cloud, seed):
    n = len(interior_cloud)
    if method.kind == "uniform":
        return UniformSampler(n, seed=seed)
    if method.kind == "mis":
        return MISSampler(n, tau_e=config.tau_e, measure="grad_norm",
                          seed=seed)
    if method.kind in ("sgm", "sgm_s"):
        return SGMSampler(
            interior_cloud.features(), k=config.knn_k,
            level=config.lrd_level, tau_e=config.tau_e, tau_G=config.tau_G,
            probe_ratio=config.probe_ratio,
            use_isr=(method.kind == "sgm_s"),
            isr_weight=getattr(config, "isr_weight", 1.0),
            isr_k=getattr(config, "isr_k", 10),
            isr_rank=getattr(config, "isr_rank", 6),
            seed=seed)
    raise ValueError(f"unknown method kind {method.kind!r}")


def _train(problem, method, config, validators, seed, steps=None):
    constraints = problem["constraints"]
    interior = problem["interior_cloud"]
    # batch sizes: interior gets the method's batch; boundary constraints a
    # quarter each (Modulus assigns smaller batches to BC constraints)
    for constraint in constraints:
        if constraint.name == "interior":
            constraint.batch_size = method.batch_size
        else:
            constraint.batch_size = max(16, method.batch_size // 4)

    dtype = np.dtype(config.network.dtype)
    for constraint in constraints:
        constraint.set_dtype(dtype)
    in_features = 2 + interior.params.shape[1]
    net = FullyConnected(in_features, 3, width=config.network.width,
                         depth=config.network.depth,
                         activation=config.network.activation,
                         rng=np.random.default_rng(config.seed),
                         dtype=dtype)
    optimizer = Adam(net.parameters(), lr=config.lr)
    scheduler = ExponentialDecayLR(optimizer,
                                   decay_rate=config.lr_decay_rate,
                                   decay_steps=config.lr_decay_steps)
    sampler = _make_sampler(method, config, interior, seed)
    trainer = Trainer(net, constraints, optimizer, scheduler=scheduler,
                      samplers={"interior": sampler},
                      validators=validators, seed=seed)
    history = trainer.train(steps if steps is not None else config.steps,
                            validate_every=config.validate_every,
                            record_every=config.record_every,
                            label=method.label)
    return RunResult(label=method.label, history=history, net=net,
                     sampler=sampler, config=config)


def run_ldc_method(config, method, validators=None, seed=None, steps=None):
    """Train one LDC method and return its :class:`RunResult`."""
    seed = config.seed if seed is None else seed
    rng = np.random.default_rng(seed)
    if validators is None:
        validators = [ldc_validator(config, np.random.default_rng(config.seed))]
    problem = build_ldc_problem(config, method.n_interior, rng)
    return _train(problem, method, config, validators, seed, steps=steps)


def run_ar_method(config, method, validators=None, seed=None, steps=None):
    """Train one annular-ring method and return its :class:`RunResult`."""
    seed = config.seed if seed is None else seed
    rng = np.random.default_rng(seed)
    if validators is None:
        validators = ar_validators(config, np.random.default_rng(config.seed))
    problem = build_ar_problem(config, method.n_interior, rng)
    return _train(problem, method, config, validators, seed, steps=steps)


def run_ldc_suite(config, methods=None, verbose=True):
    """Train all Table-1 methods; returns ``{label: RunResult}``."""
    methods = methods if methods is not None else ldc_methods(config)
    validators = [ldc_validator(config, np.random.default_rng(config.seed))]
    results = {}
    for method in methods:
        if verbose:
            print(f"[ldc:{config.scale}] training {method.label} "
                  f"(N={method.n_interior}, batch={method.batch_size})")
        results[method.label] = run_ldc_method(config, method,
                                               validators=validators)
    return results


def run_ar_suite(config, include_plain_sgm=False, verbose=True):
    """Train all Table-2 methods; returns ``{label: RunResult}``."""
    methods = ar_methods(config, include_plain_sgm=include_plain_sgm)
    validators = ar_validators(config, np.random.default_rng(config.seed))
    results = {}
    for method in methods:
        if verbose:
            print(f"[ar:{config.scale}] training {method.label} "
                  f"(N={method.n_interior}, batch={method.batch_size})")
        results[method.label] = run_ar_method(config, method,
                                              validators=validators)
    return results
