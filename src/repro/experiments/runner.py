"""Experiment runner: trains every method of Table 1 / Table 2.

Each method trains an identically initialised network on the same problem;
only the sampler (and, per the paper, dataset/batch size) differs:

* ``U_small``  — uniform sampling, reduced batch & dataset (paper: U500/U1024)
* ``U_large``  — uniform sampling, large batch & dataset (paper: U4000/U4096)
* ``MIS``      — Modulus-style pointwise importance sampling, reduced sizes
* ``SGM``      — SGM-PINN without the stability term (S1+S2+S4)
* ``SGM-S``    — SGM-PINN with the ISR stability term (S1-S4)

The training wiring itself lives in :func:`repro.api.run_problem`; this
module keeps the table-suite conveniences.  (The pre-registry
``run_ldc_method`` / ``run_ar_method`` shims were removed once every caller
had migrated to :class:`repro.api.Session` / :func:`run_suite`.)
"""

from __future__ import annotations

import numpy as np

from ..api.types import MethodSpec, RunResult

__all__ = ["MethodSpec", "RunResult",
           "run_ldc_suite", "run_ar_suite", "ldc_methods", "ar_methods"]


def ldc_methods(config):
    """The four Table-1 columns at this config's scale."""
    return [
        MethodSpec(f"U{config.batch_small}", "uniform",
                   config.n_interior_small, config.batch_small),
        MethodSpec(f"U{config.batch_large}", "uniform",
                   config.n_interior_large, config.batch_large),
        MethodSpec(f"MIS{config.batch_small}", "mis",
                   config.n_interior_small, config.batch_small),
        MethodSpec(f"SGM{config.batch_small}", "sgm",
                   config.n_interior_small, config.batch_small),
    ]


def ar_methods(config, include_plain_sgm=False):
    """The Table-2 columns (+ the Figure-3-only plain SGM variant)."""
    methods = [
        MethodSpec(f"U{config.batch_small}", "uniform",
                   config.n_interior_small, config.batch_small),
        MethodSpec(f"U{config.batch_large}", "uniform",
                   config.n_interior_large, config.batch_large),
        MethodSpec(f"MIS{config.batch_small}", "mis",
                   config.n_interior_small, config.batch_small),
    ]
    if include_plain_sgm:
        methods.append(MethodSpec(f"SGM{config.batch_small}", "sgm",
                                  config.n_interior_small,
                                  config.batch_small))
    methods.append(MethodSpec(f"SGM-S{config.batch_small}", "sgm_s",
                              config.n_interior_small, config.batch_small))
    return methods


def _run_method(name, config, method, validators=None, seed=None,
                steps=None):
    """Build the registered problem ``name`` and train one method on it."""
    from ..api import build_problem, run_problem
    seed = config.seed if seed is None else seed
    prob = build_problem(name, config, method.n_interior,
                         np.random.default_rng(seed))
    return run_problem(prob, config, sampler=method.kind,
                       batch_size=method.batch_size, seed=seed, steps=steps,
                       label=method.label, validators=validators)


def run_ldc_suite(config, methods=None, verbose=True, backend="serial",
                  max_workers=None):
    """Train all Table-1 methods; returns ``{label: RunResult}``.

    Thin wrapper over the registry-driven :func:`repro.experiments.run_suite`
    engine, kept for the Table-1 call sites; pass ``backend="process"`` to
    shard the sweep over a process pool.
    """
    from .suite import run_suite
    methods = methods if methods is not None else ldc_methods(config)
    suite = run_suite("ldc", methods, backend=backend,
                      max_workers=max_workers, config=config, verbose=verbose)
    return suite.run_results()


def run_ar_suite(config, include_plain_sgm=False, verbose=True,
                 backend="serial", max_workers=None):
    """Train all Table-2 methods; returns ``{label: RunResult}``.

    Thin wrapper over :func:`repro.experiments.run_suite`; pass
    ``backend="process"`` to shard the sweep over a process pool.
    """
    from .suite import run_suite
    methods = ar_methods(config, include_plain_sgm=include_plain_sgm)
    suite = run_suite("annular_ring", methods, backend=backend,
                      max_workers=max_workers, config=config, verbose=verbose)
    return suite.run_results()
