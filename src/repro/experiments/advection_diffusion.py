"""Advection-diffusion problem builder (scalar transport in the unit square).

A constant prescribed velocity ``(u, v)`` advects a scalar ``T`` with
diffusivity ``alpha``.  The manufactured solution
``T = exp((u x + v y) / alpha)`` satisfies ``u T_x + v T_y = alpha lap(T)``
exactly (plug in: the advection term contributes ``(u^2 + v^2)/alpha`` per
unit ``T`` and the Laplacian the same), so Dirichlet walls carry exact data
and validation needs no reference solver.  The solution steepens toward the
outflow corner, concentrating residual mass where importance sampling pays.
"""

from __future__ import annotations

import numpy as np

from ..geometry import Rectangle
from ..pde import AdvectionDiffusion2D
from ..training import (
    BoundaryConstraint, InteriorConstraint, PointwiseValidator,
)

__all__ = ["build_advection_diffusion_problem", "advection_diffusion_exact",
           "advection_diffusion_validator", "OUTPUT_NAMES", "SPATIAL_NAMES"]

OUTPUT_NAMES = ("T",)
SPATIAL_NAMES = ("x", "y")


def advection_diffusion_exact(config, x, y):
    """Manufactured solution ``exp((u x + v y) / alpha)``."""
    u, v = config.velocity
    return np.exp((u * np.asarray(x) + v * np.asarray(y)) / config.alpha)


def advection_diffusion_validator(config, rng):
    """Pointwise validator against the manufactured solution."""
    points = rng.uniform(0.0, 1.0, (config.n_validation, 2))
    exact = advection_diffusion_exact(config, points[:, 0], points[:, 1])
    return PointwiseValidator("advection_diffusion", points, {"T": exact},
                              OUTPUT_NAMES, spatial_names=SPATIAL_NAMES)


def build_advection_diffusion_problem(config, n_interior, rng):
    """Construct clouds and constraints for one advection-diffusion run.

    Returns
    -------
    dict with keys ``interior_cloud``, ``constraints``, ``output_names``,
    ``spatial_names`` (same shape as the other problem builders).
    """
    square = Rectangle((0.0, 0.0), (1.0, 1.0))
    interior = square.sample_interior(n_interior, rng)
    boundary = square.sample_boundary(config.n_boundary, rng)

    u, v = (float(c) for c in config.velocity)
    field_sources = {
        "u": lambda coords, params: np.full(len(coords), u),
        "v": lambda coords, params: np.full(len(coords), v),
    }

    def exact_data(coords, params):
        return advection_diffusion_exact(config, coords[:, 0], coords[:, 1])

    constraints = [
        InteriorConstraint("interior", interior,
                           AdvectionDiffusion2D(config.alpha),
                           batch_size=0, sdf_weighting=False,
                           spatial_names=SPATIAL_NAMES,
                           field_sources=field_sources),
        BoundaryConstraint("walls", boundary, OUTPUT_NAMES,
                           {"T": exact_data},
                           batch_size=0, weight=config.boundary_weight,
                           spatial_names=SPATIAL_NAMES),
    ]
    return {"interior_cloud": interior, "constraints": constraints,
            "output_names": OUTPUT_NAMES, "spatial_names": SPATIAL_NAMES}
