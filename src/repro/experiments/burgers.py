"""Viscous-Burgers problem builder (1 space + 1 time dimension).

The travelling-wave solution concentrates all residual mass in a thin
moving front — exactly the regime cluster-level importance sampling is
built for.  The space-time "boundary" is the ``t = 0`` initial slice plus
the ``x = ±1`` walls with the exact solution as Dirichlet data; the
``t = 1`` face is left unconstrained.
"""

from __future__ import annotations

from ..geometry import Rectangle
from ..pde import Burgers1D, burgers_travelling_wave
from ..training import (
    BoundaryConstraint, InteriorConstraint, PointwiseValidator,
)

__all__ = ["build_burgers_problem", "burgers_exact", "burgers_validator",
           "OUTPUT_NAMES", "SPATIAL_NAMES"]

OUTPUT_NAMES = ("u",)
SPATIAL_NAMES = ("x", "t")

#: the (x, t) space-time domain: x in [-1, 1], t in [0, 1]
DOMAIN = ((-1.0, 0.0), (1.0, 1.0))


def burgers_exact(config, x, t):
    """Exact travelling-wave solution at this config's parameters."""
    return burgers_travelling_wave(x, t, config.nu,
                                   amplitude=config.amplitude,
                                   speed=config.speed)


def burgers_validator(config, rng):
    """Pointwise validator against the exact solution."""
    lo, hi = DOMAIN
    points = rng.uniform(lo, hi, (config.n_validation, 2))
    exact = burgers_exact(config, points[:, 0], points[:, 1])
    return PointwiseValidator("burgers", points, {"u": exact},
                              OUTPUT_NAMES, spatial_names=SPATIAL_NAMES)


def build_burgers_problem(config, n_interior, rng):
    """Construct clouds and constraints for one Burgers-front run.

    Returns
    -------
    dict with keys ``interior_cloud``, ``constraints``, ``output_names``,
    ``spatial_names`` (same shape as the LDC/annular-ring builders).
    """
    domain = Rectangle(*DOMAIN)
    interior = domain.sample_interior(n_interior, rng)
    boundary = domain.sample_boundary(config.n_boundary, rng)
    # drop the t = 1 face: the front's future is predicted, not prescribed
    boundary = boundary.filter(lambda c: c[:, 1] < 1.0 - 1e-9)

    def exact_data(coords, params):
        return burgers_exact(config, coords[:, 0], coords[:, 1])

    constraints = [
        InteriorConstraint("interior", interior, Burgers1D(nu=config.nu),
                           batch_size=0, sdf_weighting=False,
                           spatial_names=SPATIAL_NAMES),
        BoundaryConstraint("data", boundary, OUTPUT_NAMES,
                           {"u": exact_data},
                           batch_size=0, weight=config.boundary_weight,
                           spatial_names=SPATIAL_NAMES),
    ]
    return {"interior_cloud": interior, "constraints": constraints,
            "output_names": OUTPUT_NAMES, "spatial_names": SPATIAL_NAMES}
