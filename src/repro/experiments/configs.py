"""Experiment configurations and scale presets.

The ``paper`` preset documents the exact hyper-parameters of §4 (V100-scale;
listed for reference).  The ``repro`` preset shrinks dataset, batch, network,
and iteration counts proportionally so the full suite runs on a CPU in
minutes while preserving every structural ratio the paper's comparisons rely
on (batch_small : batch_large, N_small : N_large, tau_e : tau_G : steps).
The ``smoke`` preset is for CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["LDCConfig", "AnnularRingConfig", "BurgersConfig",
           "Poisson3DConfig", "AdvectionDiffusionConfig",
           "InverseBurgersConfig", "NS3DConfig",
           "ldc_config", "annular_ring_config", "burgers_config",
           "poisson3d_config", "advection_diffusion_config",
           "inverse_burgers_config", "ns3d_config", "SCALES"]

SCALES = ("paper", "repro", "smoke")


@dataclass
class NetworkConfig:
    """PINN architecture (paper: width 512, depth 6, SiLU).

    ``dtype`` is the working precision; the repro presets use float32, which
    matches the paper's GPU setting (Modulus trains in single precision) and
    roughly halves CPU matmul time.
    """

    width: int = 512
    depth: int = 6
    activation: str = "silu"
    dtype: str = "float32"


@dataclass
class LDCConfig:
    """Lid-driven cavity, zero-equation turbulence (paper §4.1, Table 1)."""

    scale: str = "paper"
    reynolds: float = 1000.0
    lid_velocity: float = 1.0
    turbulent: bool = True
    #: dataset sizes: baseline (U4000) vs reduced (U500 / MIS500 / SGM500)
    n_interior_large: int = 16_000_000
    n_interior_small: int = 8_000_000
    n_boundary: int = 40_000
    batch_large: int = 4000
    batch_small: int = 500
    steps: int = 2_500_000
    # SGM hyper-parameters (paper values)
    tau_e: int = 7000
    tau_G: int = 25_000
    knn_k: int = 30
    lrd_level: int = 10
    probe_ratio: float = 0.15
    # optimizer
    lr: float = 1e-3
    lr_decay_rate: float = 0.95
    lr_decay_steps: int = 4000
    boundary_weight: float = 100.0
    network: NetworkConfig = field(default_factory=NetworkConfig)
    # validation / bookkeeping
    reference_resolution: int = 97
    n_validation: int = 1600
    validate_every: int = 200
    record_every: int = 50
    full_diffusion: bool = False
    seed: int = 0


@dataclass
class AnnularRingConfig:
    """Parameterized annular ring (paper §4.2, Table 2)."""

    scale: str = "paper"
    nu: float = 0.1
    inlet_peak_velocity: float = 1.5
    r_inner_range: tuple = (0.75, 1.1)
    validation_radii: tuple = (1.0, 0.875, 0.75)
    n_interior_large: int = 16_000_000
    n_interior_small: int = 8_000_000
    n_boundary: int = 40_000
    n_inlet_outlet: int = 8_000
    batch_large: int = 4096
    batch_small: int = 1024
    steps: int = 400_000
    tau_e: int = 7000
    tau_G: int = 60_000
    knn_k: int = 7
    lrd_level: int = 6
    probe_ratio: float = 0.15
    isr_weight: float = 1.0
    isr_k: int = 10
    isr_rank: int = 6
    lr: float = 1e-3
    lr_decay_rate: float = 0.95
    lr_decay_steps: int = 4000
    boundary_weight: float = 100.0
    network: NetworkConfig = field(default_factory=NetworkConfig)
    reference_nx: int = 201
    reference_ny: int = 81
    n_validation: int = 1200
    validate_every: int = 200
    record_every: int = 50
    param_draws: int = 32
    full_diffusion: bool = False
    seed: int = 0


@dataclass
class BurgersConfig:
    """Viscous Burgers with a sharp travelling front (coordinates x, t).

    The exact solution ``u = c - a tanh(a (x - c t) / (2 nu))`` concentrates
    all residual mass in a thin moving front — the regime cluster-level
    importance sampling targets.  There is no ``paper`` preset; the base
    values are the repro scale.
    """

    scale: str = "repro"
    nu: float = 0.01 / 3.141592653589793
    amplitude: float = 0.6
    speed: float = 0.4
    n_interior_large: int = 12_000
    n_interior_small: int = 6_000
    n_boundary: int = 1_200
    batch_large: int = 256
    batch_small: int = 128
    steps: int = 900
    tau_e: int = 150
    tau_G: int = 600
    knn_k: int = 8
    lrd_level: int = 5
    probe_ratio: float = 0.15
    lr: float = 4e-3
    lr_decay_rate: float = 0.95
    lr_decay_steps: int = 1200
    boundary_weight: float = 20.0
    network: NetworkConfig = field(
        default_factory=lambda: NetworkConfig(width=32, depth=3,
                                              activation="tanh"))
    n_validation: int = 800
    validate_every: int = 100
    record_every: int = 50
    seed: int = 0


@dataclass
class Poisson3DConfig:
    """3-D Poisson in the unit cube (coordinates x, y, z).

    Validated against the manufactured solution
    ``u = sin(pi x) sin(pi y) sin(pi z)``; the base values are the repro
    scale (there is no ``paper`` preset).
    """

    scale: str = "repro"
    n_interior_large: int = 10_000
    n_interior_small: int = 5_000
    n_boundary: int = 1_500
    batch_large: int = 256
    batch_small: int = 128
    steps: int = 700
    tau_e: int = 200
    tau_G: int = 1_500
    knn_k: int = 10
    lrd_level: int = 5
    probe_ratio: float = 0.15
    lr: float = 3e-3
    lr_decay_rate: float = 0.95
    lr_decay_steps: int = 1200
    boundary_weight: float = 10.0
    network: NetworkConfig = field(
        default_factory=lambda: NetworkConfig(width=32, depth=3,
                                              activation="tanh"))
    n_validation: int = 600
    validate_every: int = 100
    record_every: int = 50
    seed: int = 0


@dataclass
class AdvectionDiffusionConfig:
    """Steady advection-diffusion of a scalar in the unit square.

    A prescribed constant velocity advects a scalar ``T``; the exact
    solution ``T = exp((u x + v y) / alpha)`` steepens toward the outflow
    corner, giving the importance samplers a residual hot spot.  The base
    values are the repro scale (there is no ``paper`` preset).
    """

    scale: str = "repro"
    alpha: float = 0.5
    velocity: tuple = (1.0, 0.5)
    n_interior_large: int = 10_000
    n_interior_small: int = 5_000
    n_boundary: int = 1_200
    batch_large: int = 256
    batch_small: int = 128
    steps: int = 700
    tau_e: int = 200
    tau_G: int = 1_500
    knn_k: int = 8
    lrd_level: int = 5
    probe_ratio: float = 0.15
    lr: float = 3e-3
    lr_decay_rate: float = 0.95
    lr_decay_steps: int = 1200
    boundary_weight: float = 10.0
    network: NetworkConfig = field(
        default_factory=lambda: NetworkConfig(width=32, depth=3,
                                              activation="tanh"))
    n_validation: int = 600
    validate_every: int = 100
    record_every: int = 50
    seed: int = 0


@dataclass
class InverseBurgersConfig:
    """Inverse viscosity recovery on the Burgers travelling wave.

    The wave is observed at ``n_sensors`` scattered space-time locations;
    a network and a trainable viscosity (softplus-positive, started at
    ``nu_initial``) are fitted jointly until the PDE residual and the
    measurement misfit both vanish, recovering ``true_nu``.  The validator
    reports both the field error err(u) and the coefficient recovery error
    err(nu) = |recovered - true| / true.  The base values are the repro
    scale (there is no ``paper`` preset).
    """

    scale: str = "repro"
    #: viscosity the sensor data is generated with (the recovery target)
    true_nu: float = 0.2
    #: initial coefficient guess (10x too small, as in the original example)
    nu_initial: float = 0.02
    amplitude: float = 0.5
    speed: float = 0.5
    n_sensors: int = 600
    data_weight: float = 20.0
    n_interior_large: int = 12_000
    n_interior_small: int = 6_000
    n_boundary: int = 600
    batch_large: int = 256
    batch_small: int = 128
    steps: int = 900
    tau_e: int = 150
    tau_G: int = 600
    knn_k: int = 8
    lrd_level: int = 5
    probe_ratio: float = 0.15
    lr: float = 5e-3
    lr_decay_rate: float = 0.95
    lr_decay_steps: int = 1200
    boundary_weight: float = 20.0
    network: NetworkConfig = field(
        default_factory=lambda: NetworkConfig(width=24, depth=2,
                                              activation="tanh"))
    n_validation: int = 600
    validate_every: int = 100
    record_every: int = 50
    seed: int = 0


@dataclass
class NS3DConfig:
    """3-D Navier-Stokes in the unit cube (outputs u, v, w, p).

    Validated against the manufactured Beltrami (ABC) flow: a steady Euler
    solution whose viscous defect is supplied back as an exact body force
    ``f = nu k^2 U``, making the flow an exact solution of the *forced*
    Navier-Stokes system at any viscosity.  Dirichlet walls carry the exact
    velocity and pressure (pinning the pressure gauge).  The base values
    are the repro scale (there is no ``paper`` preset).
    """

    scale: str = "repro"
    nu: float = 0.1
    #: ABC-flow amplitudes (A, B, C)
    amplitudes: tuple = (1.0, 1.0, 1.0)
    #: wavenumber k of the Beltrami field over the unit cube
    wavenumber: float = 3.141592653589793
    n_interior_large: int = 10_000
    n_interior_small: int = 5_000
    n_boundary: int = 1_500
    batch_large: int = 256
    batch_small: int = 128
    steps: int = 700
    tau_e: int = 200
    tau_G: int = 1_500
    knn_k: int = 10
    lrd_level: int = 5
    probe_ratio: float = 0.15
    lr: float = 3e-3
    lr_decay_rate: float = 0.95
    lr_decay_steps: int = 1200
    boundary_weight: float = 10.0
    network: NetworkConfig = field(
        default_factory=lambda: NetworkConfig(width=40, depth=3,
                                              activation="tanh"))
    n_validation: int = 600
    validate_every: int = 100
    record_every: int = 50
    seed: int = 0


def ldc_config(scale="repro"):
    """LDC config at the requested scale preset."""
    base = LDCConfig()
    if scale == "paper":
        return base
    if scale == "repro":
        return replace(
            base, scale="repro", reynolds=100.0,
            n_interior_large=40_000, n_interior_small=20_000,
            n_boundary=2_000, batch_large=320, batch_small=128,
            steps=3000, tau_e=300, tau_G=1000, knn_k=12, lrd_level=7,
            lr=1e-3, lr_decay_steps=1200, boundary_weight=10.0,
            network=NetworkConfig(width=64, depth=4),
            reference_resolution=81, n_validation=900,
            validate_every=100, record_every=40)
    if scale == "smoke":
        return replace(
            base, scale="smoke", reynolds=100.0,
            n_interior_large=2_000, n_interior_small=1_000,
            n_boundary=300, batch_large=64, batch_small=32,
            steps=60, tau_e=20, tau_G=45, knn_k=6, lrd_level=4,
            lr=2e-3, lr_decay_steps=100,
            network=NetworkConfig(width=16, depth=2),
            reference_resolution=41, n_validation=200,
            validate_every=20, record_every=10)
    raise ValueError(f"unknown scale {scale!r}; choose from {SCALES}")


def burgers_config(scale="repro"):
    """Burgers-front config at the requested scale preset."""
    base = BurgersConfig()
    if scale in ("paper", "repro"):
        return base
    if scale == "smoke":
        return replace(
            base, scale="smoke",
            n_interior_large=2_000, n_interior_small=1_000,
            n_boundary=300, batch_large=64, batch_small=32,
            steps=60, tau_e=20, tau_G=45, knn_k=6, lrd_level=4,
            lr_decay_steps=100,
            network=NetworkConfig(width=16, depth=2, activation="tanh"),
            n_validation=200, validate_every=20, record_every=10)
    raise ValueError(f"unknown scale {scale!r}; choose from {SCALES}")


def poisson3d_config(scale="repro"):
    """3-D Poisson config at the requested scale preset."""
    base = Poisson3DConfig()
    if scale in ("paper", "repro"):
        return base
    if scale == "smoke":
        return replace(
            base, scale="smoke",
            n_interior_large=2_000, n_interior_small=1_000,
            n_boundary=300, batch_large=64, batch_small=32,
            steps=60, tau_e=20, tau_G=45, knn_k=6, lrd_level=4,
            lr_decay_steps=100,
            network=NetworkConfig(width=16, depth=2, activation="tanh"),
            n_validation=150, validate_every=20, record_every=10)
    raise ValueError(f"unknown scale {scale!r}; choose from {SCALES}")


def advection_diffusion_config(scale="repro"):
    """Advection-diffusion config at the requested scale preset."""
    base = AdvectionDiffusionConfig()
    if scale in ("paper", "repro"):
        return base
    if scale == "smoke":
        return replace(
            base, scale="smoke",
            n_interior_large=2_000, n_interior_small=1_000,
            n_boundary=300, batch_large=64, batch_small=32,
            steps=60, tau_e=20, tau_G=45, knn_k=6, lrd_level=4,
            lr_decay_steps=100,
            network=NetworkConfig(width=16, depth=2, activation="tanh"),
            n_validation=150, validate_every=20, record_every=10)
    raise ValueError(f"unknown scale {scale!r}; choose from {SCALES}")


def inverse_burgers_config(scale="repro"):
    """Inverse-viscosity config at the requested scale preset."""
    base = InverseBurgersConfig()
    if scale in ("paper", "repro"):
        return base
    if scale == "smoke":
        return replace(
            base, scale="smoke",
            n_interior_large=2_000, n_interior_small=1_000,
            n_sensors=200, n_boundary=200,
            batch_large=64, batch_small=32,
            steps=60, tau_e=20, tau_G=45, knn_k=6, lrd_level=4,
            lr_decay_steps=100,
            network=NetworkConfig(width=16, depth=2, activation="tanh"),
            n_validation=150, validate_every=20, record_every=10)
    raise ValueError(f"unknown scale {scale!r}; choose from {SCALES}")


def ns3d_config(scale="repro"):
    """3-D Navier-Stokes config at the requested scale preset."""
    base = NS3DConfig()
    if scale in ("paper", "repro"):
        return base
    if scale == "smoke":
        return replace(
            base, scale="smoke",
            n_interior_large=2_000, n_interior_small=1_000,
            n_boundary=300, batch_large=64, batch_small=32,
            steps=60, tau_e=20, tau_G=45, knn_k=6, lrd_level=4,
            lr_decay_steps=100,
            network=NetworkConfig(width=16, depth=2, activation="tanh"),
            n_validation=150, validate_every=20, record_every=10)
    raise ValueError(f"unknown scale {scale!r}; choose from {SCALES}")


def annular_ring_config(scale="repro"):
    """Annular-ring config at the requested scale preset."""
    base = AnnularRingConfig()
    if scale == "paper":
        return base
    if scale == "repro":
        return replace(
            base, scale="repro",
            n_interior_large=40_000, n_interior_small=20_000,
            n_boundary=2_400, n_inlet_outlet=600,
            batch_large=320, batch_small=128,
            steps=2000, tau_e=300, tau_G=1000, knn_k=7, lrd_level=6,
            lr=1e-3, lr_decay_steps=1200, boundary_weight=10.0,
            network=NetworkConfig(width=64, depth=4),
            reference_nx=151, reference_ny=61, n_validation=800,
            validate_every=100, record_every=40, param_draws=24)
    if scale == "smoke":
        return replace(
            base, scale="smoke",
            n_interior_large=2_000, n_interior_small=1_000,
            n_boundary=300, n_inlet_outlet=100,
            batch_large=64, batch_small=32,
            steps=60, tau_e=20, tau_G=45, knn_k=5, lrd_level=4,
            lr=2e-3, lr_decay_steps=100,
            network=NetworkConfig(width=16, depth=2),
            reference_nx=81, reference_ny=33, n_validation=150,
            validate_every=20, record_every=10, param_draws=6)
    raise ValueError(f"unknown scale {scale!r}; choose from {SCALES}")
