"""Registry-driven method sweeps with serial or sharded execution.

The paper's headline results are method-sweep tables: train the *same*
problem under several samplers (uniform small/large batch, MIS, SGM,
SGM-S) and compare error trajectories.  :func:`run_suite` generalises the
old hardcoded LDC/annular-ring loops over the problem and sampler
registries: any registered problem crossed with any subset of registered
samplers resolves into :class:`~repro.api.MethodSpec` columns.

Method sweeps are embarrassingly parallel — each column trains an
independent network — so :func:`run_suite` can shard them across a
``ProcessPoolExecutor``.  Every worker seeds itself from its spec (the
problem build, network init, and sampler all derive from ``config.seed`` /
the run seed), so serial and process execution produce bit-identical loss
trajectories; results are returned in spec order regardless of completion
order.  Workers return :class:`MethodResult` payloads that are fully
picklable (history, net state dict, sampler statistics) instead of live
trainer objects.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..api.registry import problem_registry, sampler_registry
from ..api.types import MethodSpec, RunResult

__all__ = [
    "EXECUTORS", "MethodResult", "SamplerStats", "SuiteResult",
    "method_label", "methods_from_samplers", "resolve_methods", "run_suite",
]


def _make_task(problem, config, spec, seed, steps, validators, verbose,
               store_root, checkpoint_every, compile=False, trace=False):
    """The picklable work unit :func:`_train_method` consumes.

    Built here (and only here) so :func:`run_suite` and the cross-problem
    matrix produce *identical* tuples for the same cell — which is what
    makes a matrix cell bit-identical to the standalone suite cell.
    """
    return (problem, config, spec, seed, steps, validators, verbose,
            store_root, checkpoint_every, compile, trace)

EXECUTORS = ("serial", "process")

#: label prefixes mirroring the paper's column headers (U500, MIS500, ...)
_LABEL_PREFIXES = {"uniform": "U", "mis": "MIS", "sgm": "SGM",
                   "sgm_s": "SGM-S"}


def method_label(kind, batch_size):
    """The paper-style column label for a sampler at a batch size."""
    prefix = _LABEL_PREFIXES.get(kind, kind.upper().replace("_", "-"))
    return f"{prefix}{batch_size}"


def methods_from_samplers(config, samplers=None, n_interior=None,
                          batch_size=None):
    """One small-batch :class:`MethodSpec` per sampler name.

    ``samplers=None`` expands to every registered sampler.  Sizes default
    to the config's reduced dataset/batch (the paper trains every
    importance-sampling column at the small sizes).
    """
    if samplers is None:
        samplers = sampler_registry.names()
    n_interior = (config.n_interior_small if n_interior is None
                  else int(n_interior))
    batch_size = config.batch_small if batch_size is None else int(batch_size)
    specs = []
    for kind in samplers:
        sampler_registry.get(kind)   # fail fast with the registry's error
        specs.append(MethodSpec(method_label(kind, batch_size), kind,
                                n_interior, batch_size))
    return specs


def resolve_methods(config, methods=None, n_interior=None, batch_size=None):
    """Normalise ``methods`` into a list of :class:`MethodSpec`.

    Accepts ``None`` (all registered samplers), sampler-registry names,
    ready-made :class:`MethodSpec` objects, or a mix of both.  Every spec's
    sampler kind is validated against the registry, and duplicate column
    labels are rejected (they would collide in the result tables).
    """
    if methods is None:
        specs = methods_from_samplers(config, None, n_interior, batch_size)
    else:
        specs = []
        for method in methods:
            if isinstance(method, MethodSpec):
                sampler_registry.get(method.kind)
                specs.append(method)
            else:
                specs.extend(methods_from_samplers(
                    config, [method], n_interior, batch_size))
    if not specs:
        raise ValueError("suite needs at least one method")
    labels = [spec.label for spec in specs]
    duplicates = sorted({l for l in labels if labels.count(l) > 1})
    if duplicates:
        raise ValueError(f"duplicate method labels {duplicates}; give "
                         f"explicit MethodSpecs with distinct labels")
    return specs


class SamplerStats:
    """Picklable stand-in for a worker's sampler: statistics only.

    Carries the attributes the tables/figures/examples read from a trained
    sampler (``probe_points`` overhead, SGM cluster ``labels``) without the
    live probe closures, which cannot cross a process boundary.
    """

    def __init__(self, name, probe_points, labels=None, refresh_count=0,
                 rebuild_count=0):
        self.name = name
        self.probe_points = int(probe_points)
        self.labels = labels
        self.refresh_count = int(refresh_count)
        self.rebuild_count = int(rebuild_count)

    def __repr__(self):
        return (f"SamplerStats(name={self.name!r}, "
                f"probe_points={self.probe_points})")


@dataclass
class MethodResult:
    """One trained suite column, in picklable form.

    ``run_id`` names the method's record when the sweep wrote into a
    :class:`repro.store.RunStore` (else ``None``).
    """

    spec: MethodSpec
    seed: int
    history: object
    wall_seconds: float
    sampler_stats: SamplerStats
    net_arch: dict = field(repr=False, default=None)
    net_state: dict = field(repr=False, default=None)
    run_id: str = None
    #: the cell's exported span/metric data (``Tracer.export()`` dict) when
    #: the sweep traced; plain picklable data that survives the pool
    obs_data: dict = field(repr=False, default=None)

    @property
    def label(self):
        return self.spec.label

    @property
    def kind(self):
        return self.spec.kind

    @property
    def probe_points(self):
        return self.sampler_stats.probe_points

    def rebuild_net(self):
        """Reconstruct the trained network from its architecture + state."""
        from ..nn import FullyConnected
        arch = self.net_arch
        net = FullyConnected(arch["in_features"], arch["out_features"],
                             width=arch["width"], depth=arch["depth"],
                             activation=arch["activation"],
                             dtype=np.dtype(arch["dtype"]))
        net.load_state_dict(self.net_state)
        return net

    def to_run_result(self, config=None):
        """Adapt to the :class:`~repro.api.RunResult` shape legacy callers
        (tables, figures, examples) consume."""
        return RunResult(label=self.label, history=self.history,
                         net=self.rebuild_net(), sampler=self.sampler_stats,
                         config=config)


@dataclass
class SuiteResult:
    """All methods of one sweep, in spec order with per-method timing."""

    problem: str
    executor: str
    methods: list
    total_seconds: float
    seed: int = 0
    config: object = field(repr=False, default=None)
    #: sweep-level span/metric export (cells adopted under ``suite.cell``
    #: spans) when the sweep ran with ``trace=True``; else ``None``
    obs: dict = field(repr=False, default=None)

    @property
    def labels(self):
        return [m.label for m in self.methods]

    def histories(self):
        """``{label: History}`` for the table/figure formatters."""
        return {m.label: m.history for m in self.methods}

    def timings(self):
        """``{label: training wall seconds}`` measured inside each worker."""
        return {m.label: m.wall_seconds for m in self.methods}

    def run_results(self):
        """``{label: RunResult}`` with reconstructed trained networks."""
        return {m.label: m.to_run_result(self.config) for m in self.methods}

    def __len__(self):
        return len(self.methods)

    def __iter__(self):
        return iter(self.methods)

    def __getitem__(self, label):
        for method in self.methods:
            if method.label == label:
                return method
        raise KeyError(f"unknown method label {label!r}; "
                       f"have {self.labels}")


def _train_method(task):
    """Worker: build the problem and train one method (picklable I/O).

    Runs identically under both executors — the serial path calls this
    function in-process, the process path ships ``task`` to a worker — so
    trajectory parity between executors is parity of one code path.  All
    randomness derives from ``(config, seed)``, never from worker state.
    """
    (name, config, spec, seed, steps, validators, verbose, store_root,
     checkpoint_every, compile, trace) = task
    from ..api.problems import build_problem
    from ..api.session import run_problem
    store = None
    if store_root is not None:
        # each worker opens the store itself (RunStore is not shipped across
        # the process boundary) and writes only inside its own run directory
        from ..store import RunStore
        store = RunStore(store_root)
    if verbose:
        print(f"[{name}:{config.scale}] training {spec.label} "
              f"(N={spec.n_interior}, batch={spec.batch_size})")
    # a stopwatch, not a span: the cell's spans come from run_problem's own
    # tracer and are adopted by the sweep afterwards (identically for serial
    # and process executors), so a span here would double-count the cell
    with obs.stopwatch() as walltimer:
        prob = build_problem(name, config, spec.n_interior,
                             np.random.default_rng(seed))
        result = run_problem(prob, config, sampler=spec.kind,
                             batch_size=spec.batch_size, seed=seed,
                             steps=steps, label=spec.label,
                             validators=validators, store=store,
                             checkpoint_every=checkpoint_every,
                             compile=compile, trace=trace)
    wall = walltimer.seconds

    sampler = result.sampler
    labels = getattr(sampler, "labels", None)
    stats = SamplerStats(
        name=getattr(sampler, "name", type(sampler).__name__),
        probe_points=sampler.probe_points,
        labels=None if labels is None else np.asarray(labels).copy(),
        refresh_count=getattr(sampler, "refresh_count", 0),
        rebuild_count=getattr(sampler, "rebuild_count", 0))
    arch = {"in_features": result.net.in_features,
            "out_features": result.net.out_features,
            "width": config.network.width, "depth": config.network.depth,
            "activation": config.network.activation,
            "dtype": config.network.dtype}
    return MethodResult(spec=spec, seed=seed, history=result.history,
                        wall_seconds=wall, sampler_stats=stats,
                        net_arch=arch, net_state=result.net.state_dict(),
                        run_id=result.run_id, obs_data=result.obs)


def _adopt_cells(tracer, parent_id, labels, results):
    """Graft each cell's exported spans under a ``suite.cell`` span.

    One code path for both executors: the serial path's cells traced
    in-process, the process path's cells were pickled back with their
    results — either way each :class:`MethodResult` carries a plain
    ``obs_data`` dict for :meth:`repro.obs.Tracer.adopt`.
    """
    for label, result in zip(labels, results):
        if result is not None and result.obs_data:
            tracer.adopt(result.obs_data, name="suite.cell", label=label,
                         parent=parent_id)


def _with_cell_label(exc, label):
    """Best-effort clone of ``exc`` with the failing cell's label attached.

    Falls back to the original exception for types whose constructor does
    not accept a single message (the label is still visible via the
    ``__cause__`` chain the caller raises from).
    """
    try:
        labelled = type(exc)(f"[{label}] {exc}")
    except Exception:
        return exc
    return labelled


def _execute_tasks(tasks, labels, *, executor, max_workers=None,
                   verbose=False):
    """Run :func:`_train_method` over ``tasks``, serially or on one pool.

    This is the single task/placement loop shared by :func:`run_suite`
    and the cross-problem matrix: all tasks — whatever problem they
    belong to — shard over *one* ``ProcessPoolExecutor``, and results come
    back in submission order regardless of completion order.  On the
    process path the first worker failure cancels every pending sibling
    (no wasted training of doomed cells) and re-raises with the failing
    cell's label attached.
    """
    if executor not in EXECUTORS:
        raise ValueError(f"unknown executor {executor!r}; "
                         f"choose from {EXECUTORS}")
    if executor == "serial":
        return [_train_method(task) for task in tasks]
    if max_workers is None:
        max_workers = min(len(tasks), os.cpu_count() or 1)
    results = [None] * len(tasks)
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = {pool.submit(_train_method, task): i
                   for i, task in enumerate(tasks)}
        # collect as workers finish, but place by submission index so
        # the result order is deterministic
        for future in as_completed(futures):
            index = futures[future]
            try:
                results[index] = future.result()
            except Exception as exc:
                for pending in futures:
                    pending.cancel()
                raise _with_cell_label(exc, labels[index]) from exc
            if verbose:
                done = results[index]
                print(f"[{labels[index]}] finished in "
                      f"{done.wall_seconds:.1f}s")
    return results


def run_suite(problem, methods=None, *, executor="process", max_workers=None,
              seed=None, steps=None, config=None, scale="repro",
              validators=None, verbose=False, store=None,
              checkpoint_every=None, compile=False, trace=False):
    """Train a method sweep on any registered problem.

    Parameters
    ----------
    problem:
        A problem-registry name (``ldc``, ``annular_ring``, ...).
    methods:
        ``None`` (all registered samplers), sampler names, or
        :class:`MethodSpec` objects — see :func:`resolve_methods`.
    executor:
        ``"serial"`` trains methods one after another in-process;
        ``"process"`` shards them over a ``ProcessPoolExecutor``.  Both
        produce bit-identical loss/error trajectories because every worker
        seeds independently from its spec.
    max_workers:
        Process-pool size (default: ``min(len(methods), cpu_count)``).
    seed:
        Run seed shared by all methods (default ``config.seed`` — the
        paper's fair-comparison invariant: identical initialisation).
    steps:
        Optimizer steps per method (default ``config.steps``).
    config:
        Problem config; defaults to the registered factory at ``scale``.
    validators:
        Validator override shared by every method (``[]`` skips validation
        entirely; ``None`` builds the problem's defaults per worker).  With
        ``executor="process"`` custom validator objects must be picklable.
    store:
        Optional :class:`repro.store.RunStore` (or root path).  Every
        method — including each process-pool worker — records its own
        durable run into the store; :attr:`MethodResult.run_id` names it.
    compile:
        Train every cell with record-once/replay-many tape execution
        (bit-identical to eager; automatic per-cell eager fallback).
    trace:
        Record :mod:`repro.obs` spans/metrics.  Each cell traces itself
        (workers ship the data back with their results), the sweep adopts
        every cell under a ``suite.cell`` span, and the merged export lands
        on :attr:`SuiteResult.obs`; per-run records additionally stream
        ``spans.jsonl``/``metrics.jsonl`` when ``store`` is given.

    Returns
    -------
    :class:`SuiteResult` with methods in spec order regardless of
    completion order.

    Examples
    --------
    >>> from repro.experiments import run_suite
    >>> suite = run_suite("burgers", ["uniform", "sgm"], executor="serial",
    ...                   scale="smoke", steps=3, validators=[])
    >>> suite.labels
    ['U32', 'SGM32']
    >>> sorted(suite.histories())
    ['SGM32', 'U32']
    """
    entry = problem_registry.get(problem)
    if config is None:
        config = entry.config_factory(scale)
    specs = resolve_methods(config, methods)
    seed = config.seed if seed is None else int(seed)
    store_root = None
    if store is not None:
        from ..store import RunStore
        store_root = str(RunStore.coerce(store).root)
    tasks = [_make_task(entry.name, config, spec, seed, steps, validators,
                        verbose and executor == "serial", store_root,
                        checkpoint_every, compile, trace) for spec in specs]
    labels = [f"{entry.name}:{config.scale}:{spec.label}" for spec in specs]

    suite_tracer = obs.Tracer() if trace else None
    with obs.stopwatch() as total_timer:
        if suite_tracer is None:
            results = _execute_tasks(tasks, labels, executor=executor,
                                     max_workers=max_workers,
                                     verbose=verbose)
        else:
            with suite_tracer.span("suite.run", problem=entry.name,
                                   executor=executor) as root:
                results = _execute_tasks(tasks, labels, executor=executor,
                                         max_workers=max_workers,
                                         verbose=verbose)
                _adopt_cells(suite_tracer, root.span_id, labels, results)
    return SuiteResult(problem=entry.name, executor=executor,
                       methods=results, total_seconds=total_timer.seconds,
                       seed=seed, config=config,
                       obs=(None if suite_tracer is None
                            else suite_tracer.export()))
