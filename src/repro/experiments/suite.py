"""Registry-driven method sweeps over pluggable execution backends.

The paper's headline results are method-sweep tables: train the *same*
problem under several samplers (uniform small/large batch, MIS, SGM,
SGM-S) and compare error trajectories.  :func:`run_suite` generalises the
old hardcoded LDC/annular-ring loops over the problem and sampler
registries: any registered problem crossed with any subset of registered
samplers resolves into :class:`~repro.api.MethodSpec` columns.

Method sweeps are embarrassingly parallel — each column trains an
independent network — so *where* columns run is a pure placement choice,
delegated to :mod:`repro.exec`: ``backend="serial"`` trains in-process,
``"process"`` shards over one local pool, ``"queue"`` feeds a durable
store-backed queue consumed by ``repro worker`` daemons.  Every worker
seeds itself from its spec (the problem build, network init, and sampler
all derive from ``config.seed`` / the run seed), so every backend
produces bit-identical loss trajectories; results are returned in spec
order regardless of completion order.  Workers return
:class:`MethodResult` payloads that are fully picklable (history, net
state dict, sampler statistics) instead of live trainer objects.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..api.registry import problem_registry, sampler_registry
from ..api.types import MethodSpec, RunResult
from ..exec import resolve_backend

__all__ = [
    "MethodResult", "SamplerStats", "SuiteResult", "method_label",
    "methods_from_samplers", "resolve_methods", "run_suite",
]


def _make_task(problem, config, spec, seed, steps, validators, verbose,
               store_root, checkpoint_every, compile=False, trace=False):
    """The picklable work unit :func:`_train_method` consumes.

    Built here (and only here) so :func:`run_suite` and the cross-problem
    matrix produce *identical* tuples for the same cell — which is what
    makes a matrix cell bit-identical to the standalone suite cell.
    """
    return (problem, config, spec, seed, steps, validators, verbose,
            store_root, checkpoint_every, compile, trace)


def _backend_choice(backend, executor, default, owner):
    """Resolve the ``backend=`` / deprecated ``executor=`` kwarg pair.

    ``executor=`` mapped 1:1 onto backend names, so the shim just warns
    and forwards; passing both (to different values) is an error.
    """
    if executor is not None:
        if backend is not None and backend != executor:
            raise ValueError(f"conflicting backend={backend!r} and "
                             f"deprecated executor={executor!r}")
        warnings.warn(
            f"{owner}(executor=...) is deprecated; pass backend=... "
            f"instead (same names: 'serial', 'process', ...)",
            DeprecationWarning, stacklevel=3)
        return executor
    return default if backend is None else backend

#: label prefixes mirroring the paper's column headers (U500, MIS500, ...)
_LABEL_PREFIXES = {"uniform": "U", "mis": "MIS", "sgm": "SGM",
                   "sgm_s": "SGM-S"}


def method_label(kind, batch_size):
    """The paper-style column label for a sampler at a batch size."""
    prefix = _LABEL_PREFIXES.get(kind, kind.upper().replace("_", "-"))
    return f"{prefix}{batch_size}"


def methods_from_samplers(config, samplers=None, n_interior=None,
                          batch_size=None):
    """One small-batch :class:`MethodSpec` per sampler name.

    ``samplers=None`` expands to every registered sampler.  Sizes default
    to the config's reduced dataset/batch (the paper trains every
    importance-sampling column at the small sizes).
    """
    if samplers is None:
        samplers = sampler_registry.names()
    n_interior = (config.n_interior_small if n_interior is None
                  else int(n_interior))
    batch_size = config.batch_small if batch_size is None else int(batch_size)
    specs = []
    for kind in samplers:
        sampler_registry.get(kind)   # fail fast with the registry's error
        specs.append(MethodSpec(method_label(kind, batch_size), kind,
                                n_interior, batch_size))
    return specs


def resolve_methods(config, methods=None, n_interior=None, batch_size=None):
    """Normalise ``methods`` into a list of :class:`MethodSpec`.

    Accepts ``None`` (all registered samplers), sampler-registry names,
    ready-made :class:`MethodSpec` objects, or a mix of both.  Every spec's
    sampler kind is validated against the registry, and duplicate column
    labels are rejected (they would collide in the result tables).
    """
    if methods is None:
        specs = methods_from_samplers(config, None, n_interior, batch_size)
    else:
        specs = []
        for method in methods:
            if isinstance(method, MethodSpec):
                sampler_registry.get(method.kind)
                specs.append(method)
            else:
                specs.extend(methods_from_samplers(
                    config, [method], n_interior, batch_size))
    if not specs:
        raise ValueError("suite needs at least one method")
    labels = [spec.label for spec in specs]
    duplicates = sorted({l for l in labels if labels.count(l) > 1})
    if duplicates:
        raise ValueError(f"duplicate method labels {duplicates}; give "
                         f"explicit MethodSpecs with distinct labels")
    return specs


class SamplerStats:
    """Picklable stand-in for a worker's sampler: statistics only.

    Carries the attributes the tables/figures/examples read from a trained
    sampler (``probe_points`` overhead, SGM cluster ``labels``) without the
    live probe closures, which cannot cross a process boundary.
    """

    def __init__(self, name, probe_points, labels=None, refresh_count=0,
                 rebuild_count=0):
        self.name = name
        self.probe_points = int(probe_points)
        self.labels = labels
        self.refresh_count = int(refresh_count)
        self.rebuild_count = int(rebuild_count)

    def __repr__(self):
        return (f"SamplerStats(name={self.name!r}, "
                f"probe_points={self.probe_points})")


@dataclass
class MethodResult:
    """One trained suite column, in picklable form.

    ``run_id`` names the method's record when the sweep wrote into a
    :class:`repro.store.RunStore` (else ``None``).
    """

    spec: MethodSpec
    seed: int
    history: object
    wall_seconds: float
    sampler_stats: SamplerStats
    net_arch: dict = field(repr=False, default=None)
    net_state: dict = field(repr=False, default=None)
    run_id: str = None
    #: the cell's exported span/metric data (``Tracer.export()`` dict) when
    #: the sweep traced; plain picklable data that survives the pool
    obs_data: dict = field(repr=False, default=None)

    @property
    def label(self):
        return self.spec.label

    @property
    def kind(self):
        return self.spec.kind

    @property
    def probe_points(self):
        return self.sampler_stats.probe_points

    def rebuild_net(self):
        """Reconstruct the trained network from its architecture + state."""
        from ..nn import FullyConnected
        arch = self.net_arch
        net = FullyConnected(arch["in_features"], arch["out_features"],
                             width=arch["width"], depth=arch["depth"],
                             activation=arch["activation"],
                             dtype=np.dtype(arch["dtype"]))
        net.load_state_dict(self.net_state)
        return net

    def to_run_result(self, config=None):
        """Adapt to the :class:`~repro.api.RunResult` shape legacy callers
        (tables, figures, examples) consume."""
        return RunResult(label=self.label, history=self.history,
                         net=self.rebuild_net(), sampler=self.sampler_stats,
                         config=config)


@dataclass
class SuiteResult:
    """All methods of one sweep, in spec order with per-method timing."""

    problem: str
    backend: str
    methods: list
    total_seconds: float
    seed: int = 0
    config: object = field(repr=False, default=None)
    #: sweep-level span/metric export (cells adopted under ``suite.cell``
    #: spans) when the sweep ran with ``trace=True``; else ``None``
    obs: dict = field(repr=False, default=None)

    @property
    def executor(self):
        """Alias for :attr:`backend` (the field's pre-``repro.exec`` name)."""
        return self.backend

    @property
    def labels(self):
        return [m.label for m in self.methods]

    def histories(self):
        """``{label: History}`` for the table/figure formatters."""
        return {m.label: m.history for m in self.methods}

    def timings(self):
        """``{label: training wall seconds}`` measured inside each worker."""
        return {m.label: m.wall_seconds for m in self.methods}

    def run_results(self):
        """``{label: RunResult}`` with reconstructed trained networks."""
        return {m.label: m.to_run_result(self.config) for m in self.methods}

    def __len__(self):
        return len(self.methods)

    def __iter__(self):
        return iter(self.methods)

    def __getitem__(self, label):
        for method in self.methods:
            if method.label == label:
                return method
        raise KeyError(f"unknown method label {label!r}; "
                       f"have {self.labels}")


def _train_method(task):
    """Worker: build the problem and train one method (picklable I/O).

    Runs identically under every backend — the serial backend calls this
    function in-process, the process pool and queue workers ship ``task``
    across a process boundary — so trajectory parity between backends is
    parity of one code path.  All randomness derives from
    ``(config, seed)``, never from worker state.
    """
    (name, config, spec, seed, steps, validators, verbose, store_root,
     checkpoint_every, compile, trace) = task
    from ..api.problems import build_problem
    from ..api.session import run_problem
    store = None
    if store_root is not None:
        # each worker opens the store itself (RunStore is not shipped across
        # the process boundary) and writes only inside its own run directory
        from ..store import RunStore
        store = RunStore(store_root)
    if verbose:
        print(f"[{name}:{config.scale}] training {spec.label} "
              f"(N={spec.n_interior}, batch={spec.batch_size})")
    # a stopwatch, not a span: the cell's spans come from run_problem's own
    # tracer and are adopted by the sweep afterwards (identically for every
    # backend), so a span here would double-count the cell
    with obs.stopwatch() as walltimer:
        prob = build_problem(name, config, spec.n_interior,
                             np.random.default_rng(seed))
        result = run_problem(prob, config, sampler=spec.kind,
                             batch_size=spec.batch_size, seed=seed,
                             steps=steps, label=spec.label,
                             validators=validators, store=store,
                             checkpoint_every=checkpoint_every,
                             compile=compile, trace=trace)
    wall = walltimer.seconds

    sampler = result.sampler
    labels = getattr(sampler, "labels", None)
    stats = SamplerStats(
        name=getattr(sampler, "name", type(sampler).__name__),
        probe_points=sampler.probe_points,
        labels=None if labels is None else np.asarray(labels).copy(),
        refresh_count=getattr(sampler, "refresh_count", 0),
        rebuild_count=getattr(sampler, "rebuild_count", 0))
    arch = {"in_features": result.net.in_features,
            "out_features": result.net.out_features,
            "width": config.network.width, "depth": config.network.depth,
            "activation": config.network.activation,
            "dtype": config.network.dtype}
    return MethodResult(spec=spec, seed=seed, history=result.history,
                        wall_seconds=wall, sampler_stats=stats,
                        net_arch=arch, net_state=result.net.state_dict(),
                        run_id=result.run_id, obs_data=result.obs)


def run_suite(problem, methods=None, *, backend=None, executor=None,
              max_workers=None, workers_external=False, seed=None,
              steps=None, config=None, scale="repro", validators=None,
              verbose=False, store=None, checkpoint_every=None,
              compile=False, trace=False):
    """Train a method sweep on any registered problem.

    Parameters
    ----------
    problem:
        A problem-registry name (``ldc``, ``annular_ring``, ...).
    methods:
        ``None`` (all registered samplers), sampler names, or
        :class:`MethodSpec` objects — see :func:`resolve_methods`.
    backend:
        Placement, resolved via :func:`repro.exec.resolve_backend`
        (default ``"process"``).  ``"serial"`` trains methods one after
        another in-process; ``"process"`` shards them over one local
        pool; ``"queue"`` enqueues durable jobs in the run store for
        ``repro worker`` daemons.  A ready
        :class:`~repro.exec.ExecutionBackend` instance is accepted as-is.
        Every backend produces bit-identical loss/error trajectories
        because every worker seeds independently from its spec.
    executor:
        Deprecated alias for ``backend`` (same names); warns.
    max_workers:
        Worker-fleet size (default: ``min(len(methods), cpu_count)``).
    workers_external:
        Queue backend only: do not spawn a local worker fleet — jobs wait
        for separately launched ``repro worker`` processes.
    seed:
        Run seed shared by all methods (default ``config.seed`` — the
        paper's fair-comparison invariant: identical initialisation).
    steps:
        Optimizer steps per method (default ``config.steps``).
    config:
        Problem config; defaults to the registered factory at ``scale``.
    validators:
        Validator override shared by every method (``[]`` skips validation
        entirely; ``None`` builds the problem's defaults per worker).  With
        non-serial backends custom validator objects must be picklable.
    store:
        Optional :class:`repro.store.RunStore` (or root path).  Every
        method — including each pool/queue worker — records its own
        durable run into the store; :attr:`MethodResult.run_id` names it.
        Required by the queue backend (its job records live in the store).
    compile:
        Train every cell with record-once/replay-many tape execution
        (bit-identical to eager; automatic per-cell eager fallback).
    trace:
        Record :mod:`repro.obs` spans/metrics.  Each cell traces itself
        (workers ship the data back with their results), the sweep adopts
        every cell under a ``suite.cell`` span, and the merged export lands
        on :attr:`SuiteResult.obs`; per-run records additionally stream
        ``spans.jsonl``/``metrics.jsonl`` when ``store`` is given.

    Returns
    -------
    :class:`SuiteResult` with methods in spec order regardless of
    completion order.

    Examples
    --------
    >>> from repro.experiments import run_suite
    >>> suite = run_suite("burgers", ["uniform", "sgm"], backend="serial",
    ...                   scale="smoke", steps=3, validators=[])
    >>> suite.labels
    ['U32', 'SGM32']
    >>> sorted(suite.histories())
    ['SGM32', 'U32']
    """
    entry = problem_registry.get(problem)
    if config is None:
        config = entry.config_factory(scale)
    specs = resolve_methods(config, methods)
    seed = config.seed if seed is None else int(seed)
    store_root = None
    if store is not None:
        from ..store import RunStore
        store_root = str(RunStore.coerce(store).root)
    backend = _backend_choice(backend, executor, "process", "run_suite")
    exec_backend = resolve_backend(backend, max_workers=max_workers,
                                   store=store_root,
                                   workers_external=workers_external)
    backend_name = exec_backend.name or type(exec_backend).__name__
    tasks = [_make_task(entry.name, config, spec, seed, steps, validators,
                        verbose and exec_backend.inline, store_root,
                        checkpoint_every, compile, trace) for spec in specs]
    labels = [f"{entry.name}:{config.scale}:{spec.label}" for spec in specs]

    suite_tracer = obs.Tracer() if trace else None
    with obs.stopwatch() as total_timer:
        if suite_tracer is None:
            results = exec_backend.submit(_train_method, tasks, labels,
                                          verbose=verbose)
        else:
            with suite_tracer.span("suite.run", problem=entry.name,
                                   backend=backend_name) as root:
                results = exec_backend.submit(_train_method, tasks, labels,
                                              verbose=verbose)
                exec_backend.adopt_into(suite_tracer, root.span_id, labels,
                                        results)
    return SuiteResult(problem=entry.name, backend=backend_name,
                       methods=results, total_seconds=total_timer.seconds,
                       seed=seed, config=config,
                       obs=(None if suite_tracer is None
                            else suite_tracer.export()))
