"""Experiment harness: configs, problems, runner, tables, figures."""

from .configs import (
    LDCConfig, AnnularRingConfig, BurgersConfig, Poisson3DConfig,
    AdvectionDiffusionConfig, InverseBurgersConfig, NS3DConfig,
    ldc_config, annular_ring_config, burgers_config, poisson3d_config,
    advection_diffusion_config, inverse_burgers_config, ns3d_config,
    SCALES,
)
from .ldc import build_ldc_problem, ldc_reference, ldc_validator
from .annular_ring import (
    annular_ring_geometry, build_ar_problem, ar_validators, ar_reference,
)
from .burgers import build_burgers_problem, burgers_validator
from .poisson3d import build_poisson3d_problem, poisson3d_validator
from .advection_diffusion import (
    build_advection_diffusion_problem, advection_diffusion_validator,
)
from .inverse_burgers import (
    build_inverse_burgers_problem, inverse_burgers_validators,
)
from .ns3d import build_ns3d_problem, ns3d_validator
from .runner import (
    MethodSpec, RunResult,
    run_ldc_suite, run_ar_suite, ldc_methods, ar_methods,
)
from .suite import (
    MethodResult, SamplerStats, SuiteResult, method_label,
    methods_from_samplers, resolve_methods, run_suite,
)
from .matrix import (
    MatrixResult, matrix_table, resolve_problems, run_matrix,
)
from .tables import (
    table1_rows, table2_rows, suite_rows, suite_table, format_table,
)
from .figures import (
    error_curves, curves_to_csv, render_curves, pressure_error_fields,
)

__all__ = [
    "LDCConfig", "AnnularRingConfig", "BurgersConfig", "Poisson3DConfig",
    "AdvectionDiffusionConfig", "InverseBurgersConfig", "NS3DConfig",
    "ldc_config", "annular_ring_config", "burgers_config", "poisson3d_config",
    "advection_diffusion_config", "inverse_burgers_config", "ns3d_config",
    "SCALES",
    "build_ldc_problem", "ldc_reference", "ldc_validator",
    "annular_ring_geometry", "build_ar_problem", "ar_validators",
    "ar_reference",
    "build_burgers_problem", "burgers_validator",
    "build_poisson3d_problem", "poisson3d_validator",
    "build_advection_diffusion_problem", "advection_diffusion_validator",
    "build_inverse_burgers_problem", "inverse_burgers_validators",
    "build_ns3d_problem", "ns3d_validator",
    "MethodSpec", "RunResult",
    "run_ldc_suite", "run_ar_suite", "ldc_methods", "ar_methods",
    "MethodResult", "SamplerStats", "SuiteResult",
    "method_label", "methods_from_samplers", "resolve_methods", "run_suite",
    "MatrixResult", "matrix_table", "resolve_problems", "run_matrix",
    "table1_rows", "table2_rows", "suite_rows", "suite_table",
    "format_table",
    "error_curves", "curves_to_csv", "render_curves",
    "pressure_error_fields",
]
