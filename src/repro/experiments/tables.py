"""Table formatters mirroring the paper's Table 1 and Table 2, plus the
registry-generic :func:`suite_rows` used by ``repro suite`` sweeps."""

from __future__ import annotations

import numpy as np

__all__ = ["table1_rows", "table2_rows", "suite_rows", "suite_table",
           "format_table"]


def _fmt(value, digits=4):
    if value is None:
        return "-"
    if isinstance(value, float) and not np.isfinite(value):
        return "-"
    return f"{value:.{digits}f}"


def format_table(title, columns, rows):
    """Render ``rows = [(label, {column: value})]`` as aligned text."""
    width = max([len(r[0]) for r in rows] + [14])
    col_width = max([len(c) for c in columns] + [10]) + 2
    lines = [title]
    header = " " * width + "".join(c.rjust(col_width) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for label, values in rows:
        cells = "".join(_fmt(values.get(c)).rjust(col_width)
                        for c in columns)
        lines.append(label.ljust(width) + cells)
    return "\n".join(lines)


def _time_rows(histories, columns, reference_labels, variables):
    """The T(<method>_<var>) block shared by both tables.

    ``T(M_var)`` per column = wall time that column's method needed to reach
    the *minimum* error method ``M`` achieved on ``var`` (blank if never).
    """
    rows = []
    for var in variables:
        for ref_label in reference_labels:
            if ref_label not in histories:
                continue
            threshold = histories[ref_label].min_error(var)
            row = {}
            for column in columns:
                row[column] = histories[column].time_to_reach(var, threshold)
            rows.append((f"T({ref_label}_{var})", row))
    return rows


def table1_rows(histories):
    """Rows of Table 1 (LDC): Min(u/v/nu) + time-to-threshold block.

    Parameters
    ----------
    histories:
        ``{label: History}`` — typically U_small, U_large, MIS, SGM.
    """
    columns = list(histories)
    rows = []
    for var, pretty in (("u", "Min(u)"), ("v", "Min(v)"), ("nu", "Min(nu)")):
        rows.append((pretty, {c: histories[c].min_error(var)
                              for c in columns}))
    large = [c for c in columns if c.startswith("U")][-1:]
    mis = [c for c in columns if c.startswith("MIS")]
    sgm = [c for c in columns if c.startswith("SGM")]
    rows += _time_rows(histories, columns, large + mis + sgm, ("u", "v"))
    return columns, rows


def suite_rows(histories, variables=None, reference_labels=None):
    """Generic table rows for any registry-driven method sweep.

    Unlike :func:`table1_rows` / :func:`table2_rows` (which hardcode the
    paper's column structure), this works for any ``{label: History}``:
    one ``Min(var)`` row per validated variable, plus the
    time-to-threshold block against ``reference_labels`` (default: every
    column, so each method's best error doubles as a threshold).
    """
    columns = list(histories)
    if variables is None:
        variables = sorted({var for history in histories.values()
                            for var in history.errors
                            if len(history.error_series(var)[1])})
    if reference_labels is None:
        reference_labels = columns
    rows = []
    for var in variables:
        rows.append((f"Min({var})", {c: histories[c].min_error(var)
                                     for c in columns}))
    rows += _time_rows(histories, columns, reference_labels, variables)
    return columns, rows


def suite_table(suite, title=None):
    """Render a :class:`~repro.experiments.SuiteResult` as aligned text."""
    histories = suite.histories()
    columns, rows = suite_rows(histories)
    if title is None:
        title = (f"Suite ({suite.problem}, backend={suite.backend}): "
                 f"min errors and time-to-threshold [s]")
    timings = suite.timings()
    rows.append(("train wall [s]", {c: timings[c] for c in columns}))
    return format_table(title, columns, rows)


def table2_rows(histories):
    """Rows of Table 2 (annular ring): Min(u/v), p at Min(v), time block."""
    columns = list(histories)
    rows = []
    for var, pretty in (("u", "Min(u)"), ("v", "Min(v)")):
        rows.append((pretty, {c: histories[c].min_error(var)
                              for c in columns}))
    rows.append(("p at Min(v)", {c: histories[c].value_at_min("v", "p")
                                 for c in columns}))
    small_u = [c for c in columns if c.startswith("U")][:1]
    large = [c for c in columns if c.startswith("U")][-1:]
    mis = [c for c in columns if c.startswith("MIS")]
    rows += _time_rows(histories, columns, small_u + large + mis, ("u", "v"))
    return columns, rows
