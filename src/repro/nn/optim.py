"""First-order optimizers operating on Parameter tensors.

Optimizers receive gradients computed by
:func:`repro.autodiff.gradients` and update parameter arrays in place; each
training step builds a fresh graph, so no ``zero_grad`` is needed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam", "LBFGS", "clip_grad_norm"]


def clip_grad_norm(grads, max_norm):
    """Scale gradient arrays in place so their global L2 norm ≤ ``max_norm``.

    Returns the pre-clip norm.
    """
    total = float(np.sqrt(sum(float((g ** 2).sum()) for g in grads)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for g in grads:
            g *= scale
    return total


class Optimizer:
    """Base optimizer holding a parameter list and a step counter."""

    def __init__(self, params, lr):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)
        self.step_count = 0

    def state_dict(self):
        """Snapshot of the optimizer's mutable state (copies)."""
        return {"lr": self.lr, "step_count": self.step_count}

    def load_state_dict(self, state):
        """Restore a snapshot produced by :meth:`state_dict`."""
        self.lr = float(state["lr"])
        self.step_count = int(state["step_count"])

    def step(self, grads):
        """Apply one update given per-parameter gradient tensors/arrays."""
        if len(grads) != len(self.params):
            raise ValueError(f"expected {len(self.params)} gradients, "
                             f"got {len(grads)}")
        arrays = [g.numpy() if hasattr(g, "numpy") else np.asarray(g)
                  for g in grads]
        self.step_count += 1
        self._update(arrays)

    def _update(self, grads):
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum (eq. 5)."""

    def __init__(self, params, lr=1e-3, momentum=0.0):
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def state_dict(self):
        state = super().state_dict()
        state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        self._velocity = [np.asarray(v).copy() for v in state["velocity"]]

    def _update(self, grads):
        for p, g, v in zip(self.params, grads, self._velocity):
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) — the optimizer Modulus uses by default."""

    def __init__(self, params, lr=1e-3, betas=(0.9, 0.999), eps=1e-8):
        super().__init__(params, lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def state_dict(self):
        state = super().state_dict()
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        self._m = [np.asarray(m).copy() for m in state["m"]]
        self._v = [np.asarray(v).copy() for v in state["v"]]

    def _update(self, grads):
        t = self.step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for p, g, m, v in zip(self.params, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class LBFGS(Optimizer):
    """Limited-memory BFGS with backtracking line search.

    The standard second-stage optimizer for PINNs (Adam warm-up followed by
    L-BFGS refinement).  Uses the two-loop recursion over the last
    ``history`` curvature pairs and an Armijo backtracking line search.

    Unlike the first-order optimizers, L-BFGS must re-evaluate the loss
    during the line search, so it is driven through :meth:`step_closure`
    with a callable returning ``(loss_value, grads)`` for the *same*
    mini-batch.
    """

    def __init__(self, params, lr=1.0, history=10, max_line_search=10,
                 armijo=1e-4):
        super().__init__(params, lr)
        self.history = int(history)
        self.max_line_search = int(max_line_search)
        self.armijo = float(armijo)
        self._s = []   # parameter displacements
        self._y = []   # gradient displacements
        self._last_flat_grad = None

    def state_dict(self):
        state = super().state_dict()
        state["history"] = self.history
        state["s"] = [s.copy() for s in self._s]
        state["y"] = [y.copy() for y in self._y]
        # None cannot ride in an .npz archive; omit the key instead
        if self._last_flat_grad is not None:
            state["last_flat_grad"] = self._last_flat_grad.copy()
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        self.history = int(state["history"])
        self._s = [np.asarray(s, dtype=np.float64).copy()
                   for s in state["s"]]
        self._y = [np.asarray(y, dtype=np.float64).copy()
                   for y in state["y"]]
        last = state.get("last_flat_grad")
        self._last_flat_grad = (None if last is None
                                else np.asarray(last, dtype=np.float64).copy())

    # -- flat <-> per-parameter helpers ---------------------------------
    def _flatten(self, arrays):
        return np.concatenate([np.asarray(a).ravel() for a in arrays])

    def _assign(self, flat):
        offset = 0
        for p in self.params:
            size = p.data.size
            p.data = flat[offset:offset + size].reshape(p.data.shape).astype(
                p.data.dtype)
            offset += size

    def _current_flat(self):
        return np.concatenate([p.data.astype(np.float64).ravel()
                               for p in self.params])

    def _direction(self, grad):
        q = grad.copy()
        alphas = []
        for s, y in zip(reversed(self._s), reversed(self._y)):
            rho = 1.0 / max(float(y @ s), 1e-300)
            alpha = rho * float(s @ q)
            q -= alpha * y
            alphas.append((alpha, rho, s, y))
        if self._s:
            s, y = self._s[-1], self._y[-1]
            gamma = float(s @ y) / max(float(y @ y), 1e-300)
            q *= gamma
        for alpha, rho, s, y in reversed(alphas):
            beta = rho * float(y @ q)
            q += (alpha - beta) * s
        return -q

    def step_closure(self, closure):
        """One L-BFGS update; ``closure() -> (loss, grads)`` re-evaluates
        the objective at the current parameters."""
        loss, grads = closure()
        flat_grad = self._flatten(g.numpy() if hasattr(g, "numpy") else g
                                  for g in grads)
        x0 = self._current_flat()
        direction = self._direction(flat_grad)
        slope = float(flat_grad @ direction)
        if slope >= 0:          # not a descent direction: reset memory
            self._s.clear()
            self._y.clear()
            direction = -flat_grad
            slope = -float(flat_grad @ flat_grad)

        step = self.lr
        new_loss = loss
        for _ in range(self.max_line_search):
            self._assign(x0 + step * direction)
            new_loss, new_grads = closure()
            if new_loss <= loss + self.armijo * step * slope:
                break
            step *= 0.5
        else:
            self._assign(x0)    # no acceptable step; keep parameters
            return loss

        new_flat = self._flatten(g.numpy() if hasattr(g, "numpy") else g
                                 for g in new_grads)
        s = (x0 + step * direction) - x0
        y = new_flat - flat_grad
        if float(s @ y) > 1e-10:
            self._s.append(s)
            self._y.append(y)
            if len(self._s) > self.history:
                self._s.pop(0)
                self._y.pop(0)
        self.step_count += 1
        self._last_flat_grad = new_flat
        return new_loss

    def _update(self, grads):
        raise RuntimeError("LBFGS is driven via step_closure(), not step()")
