"""Layers: linear maps, activations, and input encodings.

The paper's networks are fully connected, width 512 × depth 6, with SiLU
activations and an optional input encoding layer ``phi_E`` (eq. 2).
"""

from __future__ import annotations

import numpy as np

from .. import autodiff as ad
from ..autodiff import Tensor, concat
from .init import xavier_uniform
from .module import Module, Parameter

__all__ = ["Linear", "Activation", "FourierEncoding", "Identity", "ACTIVATIONS"]

ACTIVATIONS = {
    "silu": ad.silu,
    "tanh": ad.tanh,
    "sigmoid": ad.sigmoid,
    "relu": ad.relu,
    "sin": ad.sin,
    "softplus": ad.softplus,
    "identity": lambda x: x,
}


class Linear(Module):
    """Affine layer ``x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensionality.
    rng:
        ``numpy.random.Generator`` used for weight initialisation.
    dtype:
        Parameter dtype (default float64 for stable high-order derivatives).
    """

    def __init__(self, in_features, out_features, rng=None, dtype=np.float64):
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = Parameter(
            xavier_uniform(rng, self.in_features, self.out_features).astype(dtype),
            name="weight")
        self.bias = Parameter(np.zeros((1, self.out_features), dtype=dtype),
                              name="bias")

    def forward(self, x):
        return x @ self.weight + self.bias


class Activation(Module):
    """Wrap a named activation function as a module."""

    def __init__(self, name):
        if name not in ACTIVATIONS:
            raise ValueError(f"unknown activation {name!r}; "
                             f"choose from {sorted(ACTIVATIONS)}")
        self.name = name
        self._fn = ACTIVATIONS[name]

    def forward(self, x):
        return self._fn(x)


class Identity(Module):
    """No-op module (used as the default input encoding)."""

    def forward(self, x):
        return x


class FourierEncoding(Module):
    """Random Fourier feature encoding ``[sin(2π x B), cos(2π x B)]``.

    The frequency matrix ``B`` is fixed (not trained), matching Modulus'
    ``fourier`` input encoding.  Output width is ``2 * num_frequencies``.
    """

    def __init__(self, in_features, num_frequencies=32, scale=1.0, rng=None,
                 dtype=np.float64):
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = int(in_features)
        self.num_frequencies = int(num_frequencies)
        self.frequencies = Tensor(
            (rng.normal(0.0, scale, (in_features, num_frequencies)) * 2.0 * np.pi)
            .astype(dtype))

    @property
    def out_features(self):
        """Width of the encoded feature vector."""
        return 2 * self.num_frequencies

    def forward(self, x):
        projected = x @ self.frequencies
        return concat([ad.sin(projected), ad.cos(projected)], axis=1)
