"""Fully connected networks in the paper's architecture (eq. 2)."""

from __future__ import annotations

import numpy as np

from .layers import ACTIVATIONS, Identity, Linear
from .module import Module

__all__ = ["FullyConnected"]


class FullyConnected(Module):
    """Feed-forward network ``W_n(phi_{n-1} ∘ ... ∘ phi_1 ∘ phi_E)(x) + b_n``.

    Parameters
    ----------
    in_features:
        Number of input features (spatial coordinates plus any geometry
        parameters for parameterized PINNs).
    out_features:
        Number of outputs (e.g. ``u, v, p`` for 2-D incompressible flow).
    width:
        Hidden layer width (paper: 512).
    depth:
        Number of hidden layers (paper: 6).
    activation:
        Name of the hidden activation (paper: ``"silu"``).
    encoding:
        Optional input-encoding module (``phi_E`` in eq. 2); identity when
        ``None``.
    rng:
        Generator for reproducible initialisation.
    dtype:
        Parameter dtype.
    """

    def __init__(self, in_features, out_features, width=512, depth=6,
                 activation="silu", encoding=None, rng=None, dtype=np.float64):
        rng = rng if rng is not None else np.random.default_rng()
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.activation = activation
        self._act = ACTIVATIONS[activation]
        self.encoding = encoding if encoding is not None else Identity()
        first_in = getattr(self.encoding, "out_features", in_features)
        self.layers = []
        sizes = [first_in] + [width] * depth
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            self.layers.append(Linear(fan_in, fan_out, rng=rng, dtype=dtype))
        self.head = Linear(width, out_features, rng=rng, dtype=dtype)
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x):
        h = self.encoding(x)
        for layer in self.layers:
            h = self._act(layer(h))
        return self.head(h)
