"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "he_normal"]


def xavier_uniform(rng, fan_in, fan_out, gain=1.0):
    """Glorot/Xavier uniform init: U(-a, a), a = gain * sqrt(6/(fan_in+fan_out))."""
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def he_normal(rng, fan_in, fan_out):
    """He/Kaiming normal init: N(0, sqrt(2/fan_in))."""
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(fan_in, fan_out))
