"""Learning-rate schedules (Modulus default: exponential decay)."""

from __future__ import annotations

__all__ = ["ConstantLR", "ExponentialDecayLR"]


class ConstantLR:
    """Fixed learning rate."""

    def __init__(self, optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr

    def step(self):
        """No-op; kept for interface symmetry."""

    def state_dict(self):
        """Snapshot of the schedule's mutable state."""
        return {"base_lr": self.base_lr}

    def load_state_dict(self, state):
        """Restore a snapshot produced by :meth:`state_dict`."""
        self.base_lr = float(state["base_lr"])


class ExponentialDecayLR:
    """``lr = base_lr * decay_rate ** (step / decay_steps)``.

    Matches Modulus'/TensorFlow's staircase-free exponential decay, the
    default schedule in the examples the paper benchmarks.
    """

    def __init__(self, optimizer, decay_rate=0.95, decay_steps=4000):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.decay_rate = float(decay_rate)
        self.decay_steps = int(decay_steps)
        self._step = 0

    def step(self):
        """Advance one iteration and update the optimizer's learning rate."""
        self._step += 1
        self.optimizer.lr = (self.base_lr *
                             self.decay_rate ** (self._step / self.decay_steps))

    def state_dict(self):
        """Snapshot of the schedule's mutable state."""
        return {"base_lr": self.base_lr, "step": self._step}

    def load_state_dict(self, state):
        """Restore a snapshot produced by :meth:`state_dict`; the optimizer's
        current ``lr`` is carried by the optimizer's own state."""
        self.base_lr = float(state["base_lr"])
        self._step = int(state["step"])
