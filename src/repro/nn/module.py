"""Minimal module system for neural networks built on the autodiff engine."""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor

__all__ = ["Module", "Parameter"]


class Parameter(Tensor):
    """A trainable leaf tensor (always ``requires_grad=True``)."""

    def __init__(self, data, name=None):
        super().__init__(np.asarray(data), requires_grad=True, name=name)


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; :meth:`parameters` and :meth:`named_parameters` discover them
    recursively in deterministic (insertion) order.
    """

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Parameter discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix=""):
        """Yield ``(name, Parameter)`` pairs for this module and submodules."""
        for attr, value in vars(self).items():
            name = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{name}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{name}.{i}.")

    def parameters(self):
        """Return the list of trainable parameters."""
        return [p for _, p in self.named_parameters()]

    def num_parameters(self):
        """Total number of trainable scalars."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self):
        """Return a name → array snapshot of all parameters (copies)."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state):
        """Load parameter arrays produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)} "
                           f"unexpected={sorted(unexpected)}")
        for name, value in state.items():
            param = own[name]
            value = np.asarray(value)
            if value.shape != param.shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{value.shape} vs {param.shape}")
            param.data = value.astype(param.dtype, copy=True)
