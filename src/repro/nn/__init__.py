"""Neural-network building blocks: modules, layers, optimizers, schedules."""

from .module import Module, Parameter
from .layers import Linear, Activation, FourierEncoding, Identity, ACTIVATIONS
from .mlp import FullyConnected
from .optim import Optimizer, SGD, Adam, LBFGS, clip_grad_norm
from .schedulers import ConstantLR, ExponentialDecayLR
from .init import xavier_uniform, he_normal

__all__ = [
    "Module", "Parameter",
    "Linear", "Activation", "FourierEncoding", "Identity", "ACTIVATIONS",
    "FullyConnected",
    "Optimizer", "SGD", "Adam", "LBFGS", "clip_grad_norm",
    "ConstantLR", "ExponentialDecayLR",
    "xavier_uniform", "he_normal",
]
