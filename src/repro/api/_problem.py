"""The :class:`Problem` dataclass: one PINN workload, fully assembled.

Replaces the untyped ``{"constraints": ..., "interior_cloud": ...}`` dicts
the experiment runner used to pass around.  A ``Problem`` carries everything
the training engine needs to be dimension- and output-agnostic: the network
input width follows from ``spatial_names`` plus the cloud's parameter
columns, the output width from ``output_names``, and validators come from a
factory so each run can draw its own validation points deterministically.

(The module name carries a leading underscore so the package attribute
``repro.api.problem`` can be the :func:`~repro.api.problem` entry-point
function rather than this module.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Problem"]


@dataclass
class Problem:
    """A fully assembled PINN workload.

    Attributes
    ----------
    name:
        Registry key / display name (e.g. ``"ldc"``).
    constraints:
        List of :class:`repro.training.Constraint`; exactly one should be
        named ``"interior"`` (the cloud importance samplers act on).
    interior_cloud:
        The interior :class:`repro.geometry.PointCloud`.
    output_names:
        Network output fields in column order (drives output width).
    spatial_names:
        Coordinate names in column order (drives input width and the
        trainer's gradient probes), e.g. ``("x", "t")`` or
        ``("x", "y", "z")``.
    validator_factory:
        Optional callable ``rng -> list[PointwiseValidator]``.
    param_space:
        Optional :class:`repro.geometry.ParamSpace` for parameterized
        geometry families.
    extra_modules:
        Mapping name -> :class:`repro.nn.Module` of extra trainable pieces
        beyond the network — e.g. a
        :class:`~repro.pde.TrainableCoefficient` an inverse problem's PDE
        closes over.  The engine folds their parameters into the optimizer
        and the run store checkpoints their state alongside the network.
    """

    name: str
    constraints: list
    interior_cloud: object
    output_names: tuple
    spatial_names: tuple
    validator_factory: object = None
    param_space: object = field(default=None, repr=False)
    extra_modules: dict = field(default_factory=dict, repr=False)

    def __post_init__(self):
        self.output_names = tuple(self.output_names)
        self.spatial_names = tuple(self.spatial_names)
        self.extra_modules = dict(self.extra_modules or {})
        names = [c.name for c in self.constraints]
        if "interior" not in names:
            raise ValueError(f"problem {self.name!r} has no 'interior' "
                             f"constraint (got {names})")

    # ------------------------------------------------------------------
    @property
    def dims(self):
        """Number of spatial (coordinate) dimensions."""
        return len(self.spatial_names)

    @property
    def n_params(self):
        """Number of geometry-parameter input columns."""
        return self.interior_cloud.params.shape[1]

    @property
    def in_features(self):
        """Network input width: coordinates then parameters."""
        return self.dims + self.n_params

    @property
    def out_features(self):
        """Network output width."""
        return len(self.output_names)

    @property
    def interior(self):
        """The constraint named ``"interior"``."""
        return next(c for c in self.constraints if c.name == "interior")

    @property
    def extra_parameters(self):
        """Trainable parameters of ``extra_modules``, in registration order.

        The engine appends these to the network's parameter list when it
        constructs the optimizer, so the order here must stay deterministic
        (it also fixes the optimizer-state layout a checkpoint restores).
        """
        return [param for module in self.extra_modules.values()
                for param in module.parameters()]

    # ------------------------------------------------------------------
    def make_validators(self, rng=None):
        """Build this problem's validators (empty when no factory is set)."""
        if self.validator_factory is None:
            return []
        rng = rng if rng is not None else np.random.default_rng(0)
        return list(self.validator_factory(rng))

    @classmethod
    def from_legacy(cls, name, data, spatial_names=("x", "y"),
                    validator_factory=None):
        """Wrap a legacy problem-builder dict into a :class:`Problem`."""
        return cls(name=name,
                   constraints=list(data["constraints"]),
                   interior_cloud=data["interior_cloud"],
                   output_names=data["output_names"],
                   spatial_names=data.get("spatial_names", spatial_names),
                   validator_factory=validator_factory,
                   param_space=data.get("param_space"),
                   extra_modules=data.get("extra_modules"))
