"""Registered sampler factories: the open replacement for ``_make_sampler``.

Each factory takes ``(config, interior_cloud, seed)`` and returns a
:class:`repro.sampling.Sampler` over the interior cloud.  SGM-specific
hyper-parameters are read from the problem config (every config dataclass
carries the ``tau_e``/``tau_G``/``knn_k``/... block); ISR options fall back
to the paper's defaults when a config does not define them.
"""

from __future__ import annotations

from ..sampling import MISSampler, SGMSampler, UniformSampler
from .registry import register_sampler, sampler_registry

__all__ = ["make_sampler"]


def make_sampler(kind, config, interior_cloud, seed=0):
    """Instantiate the registered sampler ``kind`` for an interior cloud."""
    return sampler_registry.get(kind).factory(config, interior_cloud, seed)


@register_sampler("uniform")
def _uniform(config, interior_cloud, seed):
    """i.i.d. uniform mini-batches (the U_small / U_large baselines)."""
    return UniformSampler(len(interior_cloud), seed=seed)


@register_sampler("mis")
def _mis(config, interior_cloud, seed):
    """Modulus-style pointwise importance sampling (full-dataset
    refreshes)."""
    return MISSampler(len(interior_cloud), tau_e=config.tau_e,
                      measure="grad_norm", seed=seed)


def _sgm(config, interior_cloud, seed, use_isr):
    return SGMSampler(
        interior_cloud.features(), k=config.knn_k,
        level=config.lrd_level, tau_e=config.tau_e, tau_G=config.tau_G,
        probe_ratio=config.probe_ratio,
        use_isr=use_isr,
        isr_weight=getattr(config, "isr_weight", 1.0),
        isr_k=getattr(config, "isr_k", 10),
        isr_rank=getattr(config, "isr_rank", 6),
        seed=seed)


@register_sampler("sgm")
def _sgm_plain(config, interior_cloud, seed):
    """SGM-PINN cluster importance sampling without the stability term
    (S1+S2+S4)."""
    return _sgm(config, interior_cloud, seed, use_isr=False)


@register_sampler("sgm_s")
def _sgm_stability(config, interior_cloud, seed):
    """SGM-PINN with the ISR stability term (S1-S4)."""
    return _sgm(config, interior_cloud, seed, use_isr=True)
