"""Shared result/spec dataclasses for the public API.

This module is dependency-free so both :mod:`repro.api` and the legacy
:mod:`repro.experiments.runner` shims can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MethodSpec", "RunResult"]


@dataclass
class MethodSpec:
    """One column of a results table."""

    label: str
    kind: str              # a sampler-registry key: uniform | mis | sgm | sgm_s
    n_interior: int
    batch_size: int


@dataclass
class RunResult:
    """Trained artefacts for one method.

    ``run_id`` is set when the run recorded into a
    :class:`repro.store.RunStore` (else ``None``).  ``coefficients`` maps
    each trainable PDE coefficient (inverse problems) to its recovered
    value — empty for forward problems.  ``obs`` is the run's exported
    span/metric data (``Tracer.export()`` dict) when tracing was enabled,
    else ``None``; it is plain picklable data, so process-pool workers
    ship it back with the result.
    """

    label: str
    history: object
    net: object
    sampler: object
    config: object = field(repr=False, default=None)
    run_id: str = None
    coefficients: dict = field(default_factory=dict)
    obs: dict = field(repr=False, default=None)
