"""Problem and sampler registries: the library's extension seam.

SGM-PINN's claim is sampler-agnostic speedup across workloads; the natural
way to hold that claim open is to make both axes — *which problem* and
*which sampler* — pluggable by name.  Everything above this layer (the
fluent :class:`~repro.api.Session`, the CLI ``run`` command, the table
harness) resolves names through these registries, so registering a new
problem or sampler makes it reachable everywhere at once.

Usage::

    from repro.api import register_problem, register_sampler

    @register_problem("my_pde", config_factory=my_config,
                      description="my workload")
    def build_my_pde(config, n_interior, rng) -> Problem: ...

    @register_sampler("my_sampler", description="my batching rule")
    def make_my_sampler(config, interior_cloud, seed) -> Sampler: ...
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field

__all__ = [
    "Registry", "ProblemEntry", "SamplerEntry",
    "problem_registry", "sampler_registry",
    "register_problem", "register_sampler",
    "list_problems", "list_samplers",
]


def _docstring_summary(obj):
    """A docstring's summary paragraph, as one line.

    Registration uses this as the default ``description``, so a builder's
    docstring is the single source for what ``repro problems`` prints.
    Lines up to the first blank line are joined (summaries may wrap).
    """
    doc = inspect.getdoc(obj) or ""
    summary = []
    for line in doc.splitlines():
        line = line.strip()
        if not line:
            if summary:
                break
            continue
        summary.append(line)
    return " ".join(summary).rstrip(".")


class Registry:
    """A named string -> entry mapping with helpful lookup errors."""

    def __init__(self, kind):
        self.kind = kind
        self._entries = {}

    def register(self, name, entry, overwrite=False):
        """Add ``entry`` under ``name``; re-registration must be explicit."""
        if not overwrite and name in self._entries:
            raise ValueError(f"{self.kind} {name!r} is already registered; "
                             f"pass overwrite=True to replace it")
        self._entries[name] = entry
        return entry

    def get(self, name):
        """Look up an entry, raising ``KeyError`` naming the alternatives."""
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(f"unknown {self.kind} {name!r}; "
                           f"registered: {self.names()}") from None

    def names(self):
        """Registered keys, sorted."""
        return sorted(self._entries)

    def items(self):
        return [(name, self._entries[name]) for name in self.names()]

    def __contains__(self, name):
        return name in self._entries

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(self.names())


@dataclass
class ProblemEntry:
    """Registry record for one problem family.

    ``builder(config, n_interior, rng)`` returns a fully assembled
    :class:`~repro.api.Problem`; ``config_factory(scale)`` returns the
    problem's configuration dataclass at a named scale preset.
    """

    name: str
    builder: object
    config_factory: object
    description: str = ""


@dataclass
class SamplerEntry:
    """Registry record for one mini-batch sampler.

    ``factory(config, interior_cloud, seed)`` returns a
    :class:`repro.sampling.Sampler` over the interior cloud.
    """

    name: str
    factory: object
    description: str = ""


problem_registry = Registry("problem")
sampler_registry = Registry("sampler")


def register_problem(name, *, config_factory, description="",
                     overwrite=False):
    """Class-of-problem decorator: register ``builder`` under ``name``.

    ``description`` defaults to the first line of the builder's docstring,
    so the docstring is the single source for the one-line summary shown
    by ``repro problems`` and checked against ``docs/workloads.md``.
    """
    def decorate(builder):
        problem_registry.register(
            name, ProblemEntry(name=name, builder=builder,
                               config_factory=config_factory,
                               description=(description or
                                            _docstring_summary(builder))),
            overwrite=overwrite)
        return builder
    return decorate


def register_sampler(name, *, description="", overwrite=False):
    """Register a sampler factory ``(config, interior_cloud, seed)``.

    As with :func:`register_problem`, ``description`` defaults to the
    first line of the factory's docstring.
    """
    def decorate(factory):
        sampler_registry.register(
            name, SamplerEntry(name=name, factory=factory,
                               description=(description or
                                            _docstring_summary(factory))),
            overwrite=overwrite)
        return factory
    return decorate


def list_problems():
    """Names of all registered problems."""
    return problem_registry.names()


def list_samplers():
    """Names of all registered samplers."""
    return sampler_registry.names()
