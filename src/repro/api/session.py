"""The problem-agnostic training engine and the fluent :class:`Session`.

``run_problem`` is the single place networks, optimizers, samplers, and the
trainer are wired together; everything is derived from the
:class:`~repro.api.Problem` (input/output widths, probe coordinates) and
the config (architecture, schedules, SGM hyper-parameters) rather than
hardcoded per workload.

:class:`Session` is the fluent front door::

    import repro
    result = repro.problem("burgers").sampler("sgm").train(steps=500)
"""

from __future__ import annotations

import dataclasses
from contextlib import ExitStack

import numpy as np

from .. import obs
from ..nn import Adam, ExponentialDecayLR, FullyConnected
from ..training import Trainer
from ..utils import TrainingClock
from .problems import build_problem
from .registry import problem_registry, sampler_registry
from .samplers import make_sampler
from .types import RunResult

__all__ = ["Session", "problem", "run_problem"]


def _wire_training(prob, config, sampler, batch_size, seed, validators):
    """Assemble the trainer for one run (shared by fresh runs and resumes).

    Everything is derived deterministically from ``(prob, config, seed)``:
    identical inputs wire identical networks, optimizers, samplers, and
    validators, which is what makes checkpoint-resume bit-identical.
    """
    for constraint in prob.constraints:
        if constraint.name == "interior":
            constraint.batch_size = batch_size
        else:
            constraint.batch_size = max(16, batch_size // 4)

    dtype = np.dtype(config.network.dtype)
    for constraint in prob.constraints:
        constraint.set_dtype(dtype)

    net = FullyConnected(prob.in_features, prob.out_features,
                         width=config.network.width,
                         depth=config.network.depth,
                         activation=config.network.activation,
                         rng=np.random.default_rng(config.seed),
                         dtype=dtype)
    # inverse problems train extra modules (PDE coefficients) jointly: their
    # parameters join the optimizer in the problem's registration order,
    # which also fixes the optimizer-state layout checkpoints restore
    optimizer = Adam(net.parameters() + prob.extra_parameters, lr=config.lr)
    scheduler = ExponentialDecayLR(optimizer,
                                   decay_rate=config.lr_decay_rate,
                                   decay_steps=config.lr_decay_steps)
    sampler_obj = make_sampler(sampler, config, prob.interior_cloud, seed)
    if validators is None:
        validators = prob.make_validators(np.random.default_rng(config.seed))
    trainer = Trainer(net, prob.constraints, optimizer, scheduler=scheduler,
                      samplers={"interior": sampler_obj},
                      validators=validators,
                      extra_modules=prob.extra_modules, seed=seed)
    return trainer, sampler_obj


def run_problem(prob, config, sampler="uniform", batch_size=None,
                seed=None, steps=None, label=None, validators=None,
                store=None, run_id=None, checkpoint_every=None,
                resume=False, step_hooks=(), compile=False, trace=False):
    """Train one :class:`Problem` with a registered sampler.

    Parameters
    ----------
    prob:
        A built :class:`~repro.api.Problem`.
    config:
        The problem's config dataclass (network/optimizer/sampler block).
    sampler:
        Sampler-registry key (``uniform``/``mis``/``sgm``/``sgm_s``/...).
    batch_size:
        Interior batch size; boundary constraints get a quarter each
        (Modulus assigns smaller batches to BC constraints).  Defaults to
        ``config.batch_small``.
    validators:
        Override the problem's validator factory (pass ``[]`` to skip
        validation entirely).
    store:
        Optional :class:`~repro.store.RunStore` (or store root path).  When
        given, the run persists a durable record: resolved config, streamed
        loss/error history (append-only JSONL), periodic full-state
        checkpoints every ``checkpoint_every`` steps, and final sampler
        statistics.  The returned result carries the record's ``run_id``.
    run_id:
        Explicit record id (default: generated from problem/sampler/time).
    resume:
        Continue the existing record ``run_id`` from its newest checkpoint
        instead of starting fresh (used by :func:`repro.store.resume_run`).
    step_hooks:
        Extra per-step callbacks forwarded to the trainer (testing /
        instrumentation).
    compile:
        Trace the first optimizer steps and replay a compiled tape for the
        rest (see :meth:`repro.training.Trainer.train`); loss/error
        trajectories stay bit-identical to eager execution, and any graph
        the replay engine refuses falls back to eager automatically.
    trace:
        Install a fresh :mod:`repro.obs` tracer around this run.  Spans
        and metric snapshots are returned on ``RunResult.obs`` and — when
        ``store`` is given — streamed to ``spans.jsonl`` /
        ``metrics.jsonl`` beside the record's ``history.jsonl`` (appended
        on resume), for ``repro runs profile``.  Loss/error trajectories
        are unaffected: spans never touch RNG or numerics.

    Returns
    -------
    :class:`~repro.api.RunResult`
    """
    seed = config.seed if seed is None else seed
    batch_size = config.batch_small if batch_size is None else batch_size
    steps = config.steps if steps is None else steps
    label = label if label is not None else f"{prob.name}:{sampler}"
    trainer, sampler_obj = _wire_training(prob, config, sampler, batch_size,
                                          seed, validators)

    recorder = None
    history = None
    clock = None
    start_step = 0
    last_errors = None
    hooks = list(step_hooks)
    if store is not None:
        from ..store import RunStore
        store = RunStore.coerce(store)
        if resume:
            recorder = store.resume_recorder(run_id, steps=steps,
                                             checkpoint_every=checkpoint_every)
            restored = recorder.load_latest_checkpoint(trainer)
            if restored is not None:
                ckpt_step, elapsed, last_errors = restored
                start_step = ckpt_step + 1
                clock = TrainingClock(offset=elapsed)
            history = recorder.streaming_history(
                label, resume_from_step=start_step)
        else:
            recorder = store.begin_run(
                problem=prob.name, config=config, sampler=sampler,
                seed=seed, steps=steps, label=label,
                n_interior=len(prob.interior_cloud), batch_size=batch_size,
                validators=("default" if validators is None
                            else ("none" if len(validators) == 0
                                  else "custom")),
                run_id=run_id, checkpoint_every=checkpoint_every)
            history = recorder.streaming_history(label)
        hooks.append(recorder.checkpoint_hook(trainer))

    run_tracer = None
    with ExitStack() as stack:
        if trace:
            # a fresh per-run tracer, even when an ambient (suite/matrix)
            # tracer is installed: the suite adopts the exported spans
            # afterwards, identically for every execution backend
            stream = metrics_stream = None
            if recorder is not None:
                stream = recorder.path / "spans.jsonl"
                metrics_stream = recorder.path / "metrics.jsonl"
            run_tracer = stack.enter_context(
                obs.tracing(stream=stream, metrics_stream=metrics_stream))
        try:
            history = trainer.train(steps,
                                    validate_every=config.validate_every,
                                    record_every=config.record_every,
                                    label=label, clock=clock,
                                    start_step=start_step, history=history,
                                    last_errors=last_errors,
                                    step_hooks=hooks, compile=compile)
        except BaseException as exc:
            if recorder is not None:
                recorder.mark_stopped(exc)
            raise
    if recorder is not None:
        recorder.finish(history, sampler_obj)
    coefficients = {name: module.value()
                    for name, module in prob.extra_modules.items()
                    if hasattr(module, "value")}
    return RunResult(label=label, history=history, net=trainer.net,
                     sampler=sampler_obj, config=config,
                     run_id=None if recorder is None else recorder.run_id,
                     coefficients=coefficients,
                     obs=None if run_tracer is None else run_tracer.export())


class Session:
    """Fluent builder for one training run on a registered problem.

    Every setter returns ``self`` so calls chain; :meth:`train` builds the
    problem, wires the engine, and returns a
    :class:`~repro.api.RunResult`.  :meth:`suite` and :meth:`matrix` fan
    the same settings out over sampler sweeps and problems × samplers
    grids.

    Parameters
    ----------
    name : str
        A problem-registry key (``repro problems`` lists them).
    scale : str, optional
        Config scale preset: ``"repro"`` (default), ``"smoke"`` (CI-sized),
        or ``"paper"`` where defined.
    config : dataclass, optional
        A ready-made config replacing the registered factory's output.

    See Also
    --------
    repro.problem : the usual entry point returning a ``Session``.
    repro.experiments.run_suite : the functional sweep engine.

    Examples
    --------
    >>> import repro
    >>> result = (repro.problem("burgers", scale="smoke")
    ...           .sampler("uniform")
    ...           .n_interior(200)
    ...           .validators([])
    ...           .train(steps=2))
    >>> len(result.history.losses)
    2
    """

    def __init__(self, name, scale="repro", config=None):
        self._entry = problem_registry.get(name)
        self._scale = scale
        self._config = (config if config is not None
                        else self._entry.config_factory(scale))
        self._sampler = "uniform"
        self._seed = None
        self._n_interior = None
        self._batch_size = None
        self._steps = None
        self._validators = None
        self._compile = False
        self._trace = False

    # ------------------------------------------------------------------
    @property
    def name(self):
        """The registered problem name."""
        return self._entry.name

    def sampler(self, kind):
        """Choose the mini-batch sampler by registry key."""
        sampler_registry.get(kind)   # fail fast on unknown keys
        self._sampler = kind
        return self

    def scale(self, scale):
        """Switch to another config scale preset (rebuilds the config)."""
        self._config = self._entry.config_factory(scale)
        self._scale = scale
        return self

    def config(self, config=None, **overrides):
        """Replace the config, or override individual dataclass fields."""
        if config is not None:
            self._config = config
        if overrides:
            self._config = dataclasses.replace(self._config, **overrides)
        return self

    def seed(self, seed):
        """Set the run seed (defaults to ``config.seed``)."""
        self._seed = int(seed)
        return self

    def n_interior(self, n):
        """Interior dataset size (defaults to ``config.n_interior_small``)."""
        self._n_interior = int(n)
        return self

    def batch_size(self, n):
        """Interior batch size (defaults to ``config.batch_small``)."""
        self._batch_size = int(n)
        return self

    def steps(self, n):
        """Default number of optimizer steps for :meth:`train`."""
        self._steps = int(n)
        return self

    def validators(self, validators):
        """Override validators (pass ``[]`` to skip validation)."""
        self._validators = list(validators)
        return self

    def compile(self, enabled=True):
        """Replay a compiled tape after tracing the first steps.

        Bit-identical to eager execution; graphs the replay engine refuses
        fall back to eager automatically (``repro analyze tape`` reports
        readiness per problem).
        """
        self._compile = bool(enabled)
        return self

    def trace(self, enabled=True):
        """Record :mod:`repro.obs` spans/metrics for the run.

        The trained result carries the exported data on ``result.obs``;
        with a ``store`` the record also gains ``spans.jsonl`` /
        ``metrics.jsonl`` for ``repro runs profile``.  Trajectories are
        unaffected (tracing never touches RNG or numerics).
        """
        self._trace = bool(enabled)
        return self

    # ------------------------------------------------------------------
    def build(self, rng=None):
        """Build and return the :class:`~repro.api.Problem` (no training)."""
        seed = self._seed if self._seed is not None else self._config.seed
        rng = rng if rng is not None else np.random.default_rng(seed)
        return build_problem(self.name, self._config, self._n_interior, rng)

    def train(self, steps=None, label=None, store=None, run_id=None,
              checkpoint_every=None, world_size=None, dp_shards=None,
              backend="process"):
        """Build the problem and train it; returns a ``RunResult``.

        Pass ``store`` (a :class:`repro.store.RunStore` or root path) to
        persist the run — streamed history, checkpoints every
        ``checkpoint_every`` steps, and a ``run_id`` for ``repro runs``.

        Pass ``world_size`` to train data-parallel over sharded collocation
        clouds (:func:`repro.dp.run_dp`): the run is split into
        ``dp_shards`` logical shards (default 4) hosted by ``world_size``
        worker ranks on ``backend`` (``process``/``queue``/``thread``).
        The trajectory is bit-identical for every ``world_size`` —
        ``world_size=1`` runs the same sharded step inline.  Data-parallel
        runs do not write checkpoints (no resume support).
        """
        prob_steps = steps if steps is not None else self._steps
        if world_size is not None:
            from ..dp import run_dp
            if checkpoint_every is not None:
                raise ValueError("data-parallel runs do not write "
                                 "checkpoints (no resume support); drop "
                                 "checkpoint_every")
            return run_dp(
                self.name, self._config, sampler=self._sampler,
                batch_size=self._batch_size, seed=self._seed,
                steps=prob_steps, label=label,
                n_interior=self._n_interior, validators=self._validators,
                store=store, run_id=run_id, world_size=world_size,
                n_shards=dp_shards, backend=backend,
                compile=self._compile, trace=self._trace)
        prob = self.build()
        return run_problem(
            prob, self._config, sampler=self._sampler,
            batch_size=self._batch_size, seed=self._seed,
            steps=prob_steps,
            label=label, validators=self._validators, store=store,
            run_id=run_id, checkpoint_every=checkpoint_every,
            compile=self._compile, trace=self._trace)

    def suite(self, samplers=None, *, backend=None, executor=None,
              max_workers=None, workers_external=False, steps=None,
              verbose=False, store=None, checkpoint_every=None):
        """Train a method sweep on this problem; returns a ``SuiteResult``.

        ``samplers`` follows :func:`repro.experiments.resolve_methods`:
        ``None`` sweeps every registered sampler, or pass sampler names /
        ``MethodSpec`` objects.  ``backend="process"`` shards the sweep
        over a process pool, ``"queue"`` feeds a ``repro worker`` fleet
        through the store (default ``"serial"``; ``executor=`` is the
        deprecated alias); the session's ``seed``/``n_interior``/
        ``batch_size``/``steps`` overrides apply to every method.  With
        ``store`` each method (including each pool/queue worker) writes
        its own durable run record::

            repro.problem("ldc").suite(["uniform", "sgm"],
                                       backend="process", store="runs")
        """
        from ..experiments.suite import (_backend_choice, resolve_methods,
                                         run_suite)
        backend = _backend_choice(backend, executor, "serial",
                                  "Session.suite")
        methods = resolve_methods(self._config, samplers,
                                  n_interior=self._n_interior,
                                  batch_size=self._batch_size)
        return run_suite(self.name, methods, backend=backend,
                         max_workers=max_workers,
                         workers_external=workers_external, seed=self._seed,
                         steps=steps if steps is not None else self._steps,
                         config=self._config, validators=self._validators,
                         verbose=verbose, store=store,
                         checkpoint_every=checkpoint_every,
                         compile=self._compile, trace=self._trace)

    def matrix(self, problems=None, samplers=None, *, backend=None,
               executor=None, max_workers=None, workers_external=False,
               steps=None, verbose=False, store=None, checkpoint_every=None):
        """Train a cross-problem benchmark matrix; returns a
        ``MatrixResult``.

        The session acts as the settings prototype: its ``scale``,
        ``seed``, ``n_interior``, ``batch_size``, ``steps``, and
        ``validators`` overrides apply to every cell, and its (possibly
        customised) config applies to its own problem; other problems get
        their registered config factory at the session's scale.
        ``problems=None`` sweeps every registered problem; with
        ``backend="process"`` all cells shard over one shared pool
        (default ``"serial"``; ``executor=`` is the deprecated alias)::

            repro.problem("ldc", scale="smoke").matrix(
                samplers=["uniform", "sgm"], backend="process",
                store="runs")
        """
        from ..experiments.matrix import run_matrix
        from ..experiments.suite import _backend_choice
        backend = _backend_choice(backend, executor, "serial",
                                  "Session.matrix")
        return run_matrix(problems, samplers, backend=backend,
                          max_workers=max_workers,
                          workers_external=workers_external, seed=self._seed,
                          steps=steps if steps is not None else self._steps,
                          scale=self._scale, configs={self.name: self._config},
                          n_interior=self._n_interior,
                          batch_size=self._batch_size,
                          validators=self._validators, verbose=verbose,
                          store=store, checkpoint_every=checkpoint_every,
                          compile=self._compile, trace=self._trace)

    def __repr__(self):
        return (f"Session(problem={self.name!r}, scale={self._scale!r}, "
                f"sampler={self._sampler!r})")


def problem(name, scale="repro", config=None):
    """Open a fluent :class:`Session` on a registered problem.

    This is the library's single entry point for training::

        import repro
        repro.problem("poisson3d").sampler("sgm").train(steps=50)

    ``scale`` defaults to ``"repro"`` — the same preset the config
    factories and :func:`~repro.api.build_problem` default to; pass
    ``scale="smoke"`` for CI-sized runs.
    """
    return Session(name, scale=scale, config=config)
