"""Public API: first-class problems, registries, and the fluent Session.

This layer replaces the dict-based experiment plumbing with three pieces:

* :class:`Problem` — one PINN workload (constraints, interior cloud, output
  names, spatial dimensions, validator factory) as a typed object;
* the problem/sampler registries — ``@register_problem`` /
  ``@register_sampler`` make new workloads and batching rules reachable
  from the CLI, the Session builder, and the table harness by name alone;
* :class:`Session` — the fluent entry point:
  ``repro.problem("ldc").sampler("sgm").train(steps=...)``.

Importing this package registers the built-in problems (``ldc``,
``annular_ring``, ``burgers``, ``poisson3d``) and samplers (``uniform``,
``mis``, ``sgm``, ``sgm_s``).
"""

from .types import MethodSpec, RunResult
from .registry import (
    ProblemEntry, Registry, SamplerEntry, list_problems, list_samplers,
    problem_registry, register_problem, register_sampler, sampler_registry,
)
from ._problem import Problem
from .samplers import make_sampler
from .problems import build_problem
from .session import Session, problem, run_problem

__all__ = [
    "MethodSpec", "RunResult",
    "Registry", "ProblemEntry", "SamplerEntry",
    "problem_registry", "sampler_registry",
    "register_problem", "register_sampler",
    "list_problems", "list_samplers",
    "Problem", "make_sampler", "build_problem",
    "Session", "problem", "run_problem",
]
