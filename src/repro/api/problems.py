"""Built-in problem registrations: ldc, annular_ring, burgers, poisson3d,
advection_diffusion.

Each builder wraps the corresponding :mod:`repro.experiments` problem
module into a :class:`Problem`, closing the config over the validator
factory so a :class:`~repro.api.Session` (or any caller) can materialise
validators without re-plumbing configuration.
"""

from __future__ import annotations

import numpy as np

from ..experiments.advection_diffusion import (
    advection_diffusion_validator, build_advection_diffusion_problem,
)
from ..experiments.annular_ring import ar_validators, build_ar_problem
from ..experiments.burgers import build_burgers_problem, burgers_validator
from ..experiments.configs import (
    advection_diffusion_config, annular_ring_config, burgers_config,
    ldc_config, poisson3d_config,
)
from ..experiments.ldc import build_ldc_problem, ldc_validator
from ..experiments.poisson3d import build_poisson3d_problem, poisson3d_validator
from ._problem import Problem
from .registry import problem_registry, register_problem

__all__ = ["build_problem"]


def build_problem(name, config=None, n_interior=None, rng=None):
    """Build the registered problem ``name`` ready for training.

    ``config`` defaults to the problem's ``repro``-scale preset,
    ``n_interior`` to ``config.n_interior_small``, and ``rng`` to a
    generator seeded with ``config.seed``.
    """
    entry = problem_registry.get(name)
    config = config if config is not None else entry.config_factory()
    n_interior = (n_interior if n_interior is not None
                  else config.n_interior_small)
    rng = rng if rng is not None else np.random.default_rng(config.seed)
    return entry.builder(config, n_interior, rng)


@register_problem("ldc", config_factory=ldc_config,
                  description="lid-driven cavity, zero-equation turbulence "
                  "(paper §4.1, Table 1)")
def _ldc(config, n_interior, rng):
    data = build_ldc_problem(config, n_interior, rng)
    return Problem.from_legacy(
        "ldc", data, spatial_names=("x", "y"),
        validator_factory=lambda vrng: [ldc_validator(config, vrng)])


@register_problem("annular_ring", config_factory=annular_ring_config,
                  description="parameterized annular ring, r_inner in "
                  "[0.75, 1.1] (paper §4.2, Table 2)")
def _annular_ring(config, n_interior, rng):
    data = build_ar_problem(config, n_interior, rng)
    return Problem.from_legacy(
        "annular_ring", data, spatial_names=("x", "y"),
        validator_factory=lambda vrng: ar_validators(config, vrng))


@register_problem("burgers", config_factory=burgers_config,
                  description="viscous Burgers travelling front over "
                  "(x, t), validated against the exact solution")
def _burgers(config, n_interior, rng):
    data = build_burgers_problem(config, n_interior, rng)
    return Problem.from_legacy(
        "burgers", data,
        validator_factory=lambda vrng: [burgers_validator(config, vrng)])


@register_problem("poisson3d", config_factory=poisson3d_config,
                  description="3-D Poisson in the unit cube, manufactured "
                  "sin·sin·sin solution")
def _poisson3d(config, n_interior, rng):
    data = build_poisson3d_problem(config, n_interior, rng)
    return Problem.from_legacy(
        "poisson3d", data,
        validator_factory=lambda vrng: [poisson3d_validator(config, vrng)])


@register_problem("advection_diffusion",
                  config_factory=advection_diffusion_config,
                  description="scalar transport in a prescribed flow, "
                  "manufactured exponential solution")
def _advection_diffusion(config, n_interior, rng):
    data = build_advection_diffusion_problem(config, n_interior, rng)
    return Problem.from_legacy(
        "advection_diffusion", data,
        validator_factory=lambda vrng: [
            advection_diffusion_validator(config, vrng)])
