"""Built-in problem registrations: ldc, annular_ring, burgers, poisson3d,
advection_diffusion, inverse_burgers, ns3d.

Each builder wraps the corresponding :mod:`repro.experiments` problem
module into a :class:`Problem`, closing the config over the validator
factory so a :class:`~repro.api.Session` (or any caller) can materialise
validators without re-plumbing configuration.  The first line of each
builder's docstring is the registry description ``repro problems`` prints.
"""

from __future__ import annotations

import numpy as np

from ..experiments.advection_diffusion import (
    advection_diffusion_validator, build_advection_diffusion_problem,
)
from ..experiments.annular_ring import ar_validators, build_ar_problem
from ..experiments.burgers import build_burgers_problem, burgers_validator
from ..experiments.configs import (
    advection_diffusion_config, annular_ring_config, burgers_config,
    inverse_burgers_config, ldc_config, ns3d_config, poisson3d_config,
)
from ..experiments.inverse_burgers import (
    build_inverse_burgers_problem, inverse_burgers_validators,
)
from ..experiments.ldc import build_ldc_problem, ldc_validator
from ..experiments.ns3d import build_ns3d_problem, ns3d_validator
from ..experiments.poisson3d import build_poisson3d_problem, poisson3d_validator
from ._problem import Problem
from .registry import problem_registry, register_problem

__all__ = ["build_problem"]


def build_problem(name, config=None, n_interior=None, rng=None):
    """Build the registered problem ``name`` ready for training.

    ``config`` defaults to the problem's ``repro``-scale preset,
    ``n_interior`` to ``config.n_interior_small``, and ``rng`` to a
    generator seeded with ``config.seed``.
    """
    entry = problem_registry.get(name)
    config = config if config is not None else entry.config_factory()
    n_interior = (n_interior if n_interior is not None
                  else config.n_interior_small)
    rng = rng if rng is not None else np.random.default_rng(config.seed)
    return entry.builder(config, n_interior, rng)


@register_problem("ldc", config_factory=ldc_config)
def _ldc(config, n_interior, rng):
    """Lid-driven cavity, zero-equation turbulence (paper §4.1, Table 1)."""
    data = build_ldc_problem(config, n_interior, rng)
    return Problem.from_legacy(
        "ldc", data, spatial_names=("x", "y"),
        validator_factory=lambda vrng: [ldc_validator(config, vrng)])


@register_problem("annular_ring", config_factory=annular_ring_config)
def _annular_ring(config, n_interior, rng):
    """Parameterized annular ring, r_inner in [0.75, 1.1] (paper §4.2,
    Table 2)."""
    data = build_ar_problem(config, n_interior, rng)
    return Problem.from_legacy(
        "annular_ring", data, spatial_names=("x", "y"),
        validator_factory=lambda vrng: ar_validators(config, vrng))


@register_problem("burgers", config_factory=burgers_config)
def _burgers(config, n_interior, rng):
    """Viscous Burgers travelling front over (x, t), validated against the
    exact solution."""
    data = build_burgers_problem(config, n_interior, rng)
    return Problem.from_legacy(
        "burgers", data,
        validator_factory=lambda vrng: [burgers_validator(config, vrng)])


@register_problem("poisson3d", config_factory=poisson3d_config)
def _poisson3d(config, n_interior, rng):
    """3-D Poisson in the unit cube, manufactured sin·sin·sin solution."""
    data = build_poisson3d_problem(config, n_interior, rng)
    return Problem.from_legacy(
        "poisson3d", data,
        validator_factory=lambda vrng: [poisson3d_validator(config, vrng)])


@register_problem("advection_diffusion",
                  config_factory=advection_diffusion_config)
def _advection_diffusion(config, n_interior, rng):
    """Scalar transport in a prescribed flow, manufactured exponential
    solution."""
    data = build_advection_diffusion_problem(config, n_interior, rng)
    return Problem.from_legacy(
        "advection_diffusion", data,
        validator_factory=lambda vrng: [
            advection_diffusion_validator(config, vrng)])


@register_problem("inverse_burgers", config_factory=inverse_burgers_config)
def _inverse_burgers(config, n_interior, rng):
    """Inverse viscosity recovery: fit a trainable ν jointly with the net
    from sparse Burgers sensor data."""
    data = build_inverse_burgers_problem(config, n_interior, rng)
    nu = data["extra_modules"]["nu"]
    return Problem.from_legacy(
        "inverse_burgers", data,
        validator_factory=lambda vrng: inverse_burgers_validators(
            config, nu, vrng))


@register_problem("ns3d", config_factory=ns3d_config)
def _ns3d(config, n_interior, rng):
    """3-D Navier-Stokes with a third velocity output w, validated against
    the manufactured Beltrami flow."""
    data = build_ns3d_problem(config, n_interior, rng)
    return Problem.from_legacy(
        "ns3d", data,
        validator_factory=lambda vrng: [ns3d_validator(config, vrng)])
