"""Reverse-mode differentiation over dynamically built tensor graphs."""

from __future__ import annotations

from .ops import add, ones_like, zeros_like
from .tensor import Tensor

__all__ = ["gradients", "grad"]


def _topological_order(roots):
    """Return graph nodes reachable from ``roots`` in topological order.

    Only nodes that require gradients are visited; constant subgraphs are
    pruned at op-construction time so this walk touches the minimal graph.
    """
    order = []
    visited = set()
    stack = [(root, False) for root in roots]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if parent.requires_grad and id(parent) not in visited:
                stack.append((parent, False))
    return order


def gradients(outputs, inputs, grad_outputs=None, allow_unused=True):
    """Compute ``d(outputs)/d(inputs)`` via reverse-mode differentiation.

    The returned tensors are built from differentiable primitives, so calling
    :func:`gradients` on them yields higher-order derivatives — the mechanism
    PINN residuals rely on for second derivatives of network outputs with
    respect to collocation coordinates.

    Parameters
    ----------
    outputs:
        Tensor or sequence of tensors to differentiate.
    inputs:
        Tensor or sequence of tensors to differentiate with respect to.
    grad_outputs:
        Optional cotangent seeds matching ``outputs`` (defaults to ones).
    allow_unused:
        When True (default), inputs not connected to the outputs receive a
        zero tensor; otherwise a ``ValueError`` is raised.

    Returns
    -------
    list[Tensor]
        One gradient tensor per input, each with the input's shape.
    """
    single_out = isinstance(outputs, Tensor)
    outputs = [outputs] if single_out else list(outputs)
    inputs = [inputs] if isinstance(inputs, Tensor) else list(inputs)
    for i, t in enumerate(inputs):
        if not isinstance(t, Tensor):
            raise TypeError(f"inputs[{i}] is not a Tensor")
        if not t.requires_grad:
            raise ValueError(f"inputs[{i}] does not require gradients")

    if grad_outputs is None:
        grad_outputs = [ones_like(out) for out in outputs]
    else:
        grad_outputs = [grad_outputs] if isinstance(grad_outputs, Tensor) else list(grad_outputs)

    cotangents = {}
    for out, seed in zip(outputs, grad_outputs):
        if not out.requires_grad:
            continue
        key = id(out)
        cotangents[key] = add(cotangents[key], seed) if key in cotangents else seed

    input_ids = {id(t): i for i, t in enumerate(inputs)}
    results = [None] * len(inputs)

    roots = [out for out in outputs if out.requires_grad]
    for node in reversed(_topological_order(roots)):
        grad_node = cotangents.pop(id(node), None)
        if grad_node is None:
            continue
        if id(node) in input_ids:
            index = input_ids[id(node)]
            results[index] = grad_node if results[index] is None else add(results[index], grad_node)
        if node._vjp is None:
            continue
        parent_grads = node._vjp(grad_node)
        for parent, parent_grad in zip(node._parents, parent_grads):
            if parent_grad is None or not parent.requires_grad:
                continue
            key = id(parent)
            cotangents[key] = (add(cotangents[key], parent_grad)
                               if key in cotangents else parent_grad)

    for i, value in enumerate(results):
        if value is None:
            if not allow_unused:
                raise ValueError(f"inputs[{i}] is not connected to the outputs")
            results[i] = zeros_like(inputs[i])
    return results


def grad(fn):
    """Wrap scalar-valued ``fn(x)`` so the wrapper returns ``d fn/d x``.

    Convenience for tests and examples; ``x`` must be a tensor with
    ``requires_grad=True`` and ``fn`` must return a scalar tensor.
    """

    def wrapper(x):
        out = fn(x)
        return gradients(out, [x])[0]

    return wrapper
