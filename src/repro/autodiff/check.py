"""Finite-difference gradient checking utilities used by the test suite."""

from __future__ import annotations

import numpy as np

from .functional import gradients
from .tensor import Tensor

__all__ = ["numeric_gradient", "gradcheck"]


def numeric_gradient(fn, args, index, eps=1e-6):
    """Central-difference gradient of scalar ``fn(*args)`` w.r.t. ``args[index]``.

    ``args`` are numpy arrays; a fresh set of leaf tensors is built for every
    probe so the function sees clean inputs.
    """
    base = [np.asarray(a, dtype=np.float64) for a in args]
    target = base[index]
    grad_np = np.zeros_like(target)

    def evaluate(arrays):
        tensors = [Tensor(a, requires_grad=True) for a in arrays]
        return float(fn(*tensors).item())

    flat = target.reshape(-1)
    grad_flat = grad_np.reshape(-1)
    for j in range(flat.size):
        orig = flat[j]
        flat[j] = orig + eps
        up = evaluate(base)
        flat[j] = orig - eps
        down = evaluate(base)
        flat[j] = orig
        grad_flat[j] = (up - down) / (2.0 * eps)
    return grad_np


def gradcheck(fn, args, rtol=1e-4, atol=1e-6, eps=1e-6):
    """Assert analytic gradients of scalar ``fn`` match central differences.

    Parameters
    ----------
    fn:
        Callable mapping leaf tensors to a scalar tensor.
    args:
        Sequence of numpy arrays (float64 recommended).
    rtol, atol:
        Comparison tolerances.
    eps:
        Finite-difference step.

    Returns
    -------
    bool
        True on success; raises ``AssertionError`` with details otherwise.
    """
    arrays = [np.asarray(a, dtype=np.float64) for a in args]
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    out = fn(*tensors)
    if out.size != 1:
        raise ValueError("gradcheck requires a scalar-valued function")
    analytic = gradients(out, tensors)
    for i in range(len(arrays)):
        numeric = numeric_gradient(fn, arrays, i, eps=eps)
        got = analytic[i].numpy()
        if not np.allclose(got, numeric, rtol=rtol, atol=atol):
            worst = np.max(np.abs(got - numeric))
            raise AssertionError(
                f"gradient mismatch for argument {i}: max abs error {worst:.3e}\n"
                f"analytic:\n{got}\nnumeric:\n{numeric}")
    return True
