"""Higher-order reverse-mode automatic differentiation on numpy arrays.

This subpackage is the computational substrate for every PINN in the
reproduction: it provides :class:`Tensor`, a set of differentiable primitives
whose VJPs are themselves differentiable, and :func:`gradients` for
reverse-mode differentiation of arbitrary order.
"""

from .tensor import Tensor, as_tensor
from .functional import gradients, grad
from .check import gradcheck, numeric_gradient
from .introspect import Tape, iter_graph, op_name, record_tape
from .replay import (
    ReplayProgram, ReplayRefused, ReplayStale, StepTrace, compile_step,
)
from . import ops
from .ops import (
    add, sub, mul, div, neg, power, matmul,
    exp, log, sqrt, square, sin, cos, tanh,
    sigmoid, silu, relu, softplus, absolute,
    maximum, minimum, where,
    sum_, mean, reshape, transpose, broadcast_to,
    concat, getitem, zeros_like, ones_like,
)

__all__ = [
    "Tensor", "as_tensor", "gradients", "grad", "gradcheck", "numeric_gradient",
    "Tape", "iter_graph", "op_name", "record_tape",
    "ReplayProgram", "ReplayRefused", "ReplayStale", "StepTrace",
    "compile_step",
    "ops",
    "add", "sub", "mul", "div", "neg", "power", "matmul",
    "exp", "log", "sqrt", "square", "sin", "cos", "tanh",
    "sigmoid", "silu", "relu", "softplus", "absolute",
    "maximum", "minimum", "where",
    "sum_", "mean", "reshape", "transpose", "broadcast_to",
    "concat", "getitem", "zeros_like", "ones_like",
]
