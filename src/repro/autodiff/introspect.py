"""Read-only introspection over the dynamically built autodiff tape.

The engine's hot path (:mod:`repro.autodiff.ops`) deliberately keeps graph
nodes minimal — no op labels, no creation log — because PINN training builds
thousands of nodes per optimizer step.  This module recovers that metadata
*without* touching the hot path:

* :func:`op_name` derives a node's primitive name from its VJP callback's
  ``__qualname__`` (every primitive closes its VJP over its own scope, so
  ``add.<locals>.vjp`` names the op that built the node);
* :func:`record_tape` is a context manager that temporarily wraps the ops
  module's node constructors so every tensor created inside the ``with``
  block — tracked nodes *and* constant leaves — is logged in creation order
  into a :class:`Tape`;
* :func:`iter_graph` walks the graph reachable from a set of outputs in
  topological order (constants included, unlike the backward pass, which
  prunes them).

These hooks exist for :mod:`repro.analysis.tape`, the static analyzer whose
per-problem report gates the record-once/replay-many compile refactor: dead
nodes, re-materialized constants, and duplicate subgraphs found here are
exactly the waste a compiled tape eliminates.  Nothing in this module runs
during normal training.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager

from . import ops, tensor as tensor_module
from .tensor import Tensor

__all__ = ["Tape", "iter_graph", "op_name", "record_tape"]


def op_name(tensor):
    """Name of the primitive that produced ``tensor`` (``"leaf"`` for leaves).

    Every primitive in :mod:`repro.autodiff.ops` builds its node's VJP as a
    closure (``def vjp`` or a lambda) inside its own function body, so the
    callback's ``__qualname__`` — e.g. ``"mul.<locals>.vjp"`` or
    ``"tanh.<locals>.<lambda>"`` — carries the op name for free.  Nodes whose
    VJP is missing but that have parents (a mid-construction state the ops
    module never leaks) report ``"op"``.
    """
    vjp = tensor._vjp
    if vjp is None:
        return "leaf" if not tensor._parents else "op"
    qualname = getattr(vjp, "__qualname__", "")
    head = qualname.split(".", 1)[0]
    return head if head else "op"


def parents(tensor):
    """The node's parent tensors (empty tuple for leaves)."""
    return tensor._parents


class Tape:
    """Creation-ordered log of every tensor built during a recorded region.

    Attributes
    ----------
    nodes:
        Gradient-tracking graph nodes, in creation order.
    constants:
        Constant leaf tensors materialized by ops during the region (scalar
        coercions from Python literals, pruned-subgraph results, ...).
        Pre-existing leaves — parameters, input features — are *not* logged;
        they were created before recording started.
    externals:
        Tensors built through ``Tensor.__init__`` inside the region — the
        per-step *inputs* (batch coordinate columns, boundary targets,
        measurement batches).  Only populated under ``provenance=True``.
    order:
        Every logged tensor in global creation order (nodes, constants, and
        externals interleaved) — the replay compiler aligns two traces
        position by position on this list.
    info:
        ``id(tensor) -> provenance`` captured from the creating op's stack
        frame under ``provenance=True``: the op name, its local variables
        (operand tensors plus static arguments such as ``axes`` or
        ``index``), and whether the logged leaf is the op's pruned *result*
        (as opposed to an auxiliary mask like relu's).
    """

    def __init__(self):
        self.nodes = []
        self.constants = []
        self.externals = []
        self.order = []
        self.info = {}

    def __len__(self):
        return len(self.nodes)

    def created_ids(self):
        """``id()`` set of every tensor created during the region."""
        ids = {id(t) for t in self.nodes}
        ids.update(id(t) for t in self.constants)
        ids.update(id(t) for t in self.externals)
        return ids

    def __repr__(self):
        return (f"Tape({len(self.nodes)} nodes, "
                f"{len(self.constants)} constants)")


@contextmanager
def record_tape(provenance=False):
    """Log every tensor the ops module creates inside the ``with`` block.

    Works by swapping the module-level ``_node``/``_leaf`` constructors in
    :mod:`repro.autodiff.ops` for recording wrappers — the primitives resolve
    both names through the module globals at call time, so no per-op changes
    (and no steady-state overhead outside the block) are needed.  Not
    reentrant and not thread-safe; it is an offline-analysis tool, not a
    training facility.

    Parameters
    ----------
    provenance:
        When ``True`` (the replay compiler's mode) each logged tensor also
        captures the creating op's stack-frame locals into ``tape.info`` —
        recovering static arguments and, crucially, the operands of *pruned*
        constant-folded subgraphs, which the ``_leaf`` fast path otherwise
        discards — and tensors built through ``Tensor.__init__`` (the
        per-step batch inputs) are logged into ``tape.externals``.  Frame
        capture is too slow for the analyzer's bulk sweeps, hence opt-in.

    Yields
    ------
    :class:`Tape`
    """
    tape = Tape()
    original_node, original_leaf = ops._node, ops._leaf
    original_hook = tensor_module._creation_hook

    if provenance:
        def _capture(tensor, data):
            frame = sys._getframe(2)
            local = dict(frame.f_locals)
            tape.info[id(tensor)] = {
                "op": frame.f_code.co_name,
                "locals": local,
                # the leaf IS the op's (pruned) result, as opposed to an
                # auxiliary leaf such as relu's mask or absolute's sign
                "is_result": local.get("data") is data,
            }

        def recording_node(data, node_parents, vjp):
            tensor = original_node(data, node_parents, vjp)
            tape.nodes.append(tensor)
            tape.order.append(tensor)
            _capture(tensor, data)
            return tensor

        def recording_leaf(data):
            tensor = original_leaf(data)
            tape.constants.append(tensor)
            tape.order.append(tensor)
            _capture(tensor, data)
            return tensor

        def external_hook(tensor):
            tape.externals.append(tensor)
            tape.order.append(tensor)

        tensor_module._creation_hook = external_hook
    else:
        def recording_node(data, node_parents, vjp):
            tensor = original_node(data, node_parents, vjp)
            tape.nodes.append(tensor)
            tape.order.append(tensor)
            return tensor

        def recording_leaf(data):
            tensor = original_leaf(data)
            tape.constants.append(tensor)
            tape.order.append(tensor)
            return tensor

    ops._node, ops._leaf = recording_node, recording_leaf
    try:
        yield tape
    finally:
        ops._node, ops._leaf = original_node, original_leaf
        tensor_module._creation_hook = original_hook


def iter_graph(outputs):
    """Yield every tensor reachable from ``outputs`` in topological order.

    Unlike the backward pass this walk does not prune constant subgraphs:
    analysis wants to see the whole structure, gradients or not.  Each
    tensor is yielded exactly once, parents before children.
    """
    outputs = [outputs] if isinstance(outputs, Tensor) else list(outputs)
    seen = set()
    order = []
    stack = [(t, False) for t in reversed(outputs)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in seen:
                stack.append((parent, False))
    return order
