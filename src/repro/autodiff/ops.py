"""Primitive differentiable operations.

Every primitive returns a new :class:`~repro.autodiff.tensor.Tensor` whose VJP
callback is written **in terms of other primitives**, which makes the backward
pass differentiable and therefore enables arbitrary-order derivatives (PINN
residuals need at least second order).

Composite convenience functions (``silu``, ``square``, ``mean`` ...) are
expressed with primitives and inherit differentiability automatically.

Implementation note: PINN training builds thousands of graph nodes per
optimizer step, so the binary/unary primitives below use a slot-level node
constructor (:func:`_node`) and avoid redundant ``np.asarray``/generator
overhead on the hot path.  Semantics are identical to the naive versions and
are pinned down by the test suite.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "add", "sub", "mul", "div", "neg", "power", "matmul",
    "exp", "log", "sqrt", "square", "sin", "cos", "tanh",
    "sigmoid", "silu", "relu", "softplus", "absolute",
    "maximum", "minimum", "where",
    "sum_", "mean", "reshape", "transpose", "broadcast_to",
    "concat", "getitem", "zeros_like", "ones_like",
]

_new = Tensor.__new__


def _node(data, parents, vjp):
    """Fast construction of a gradient-tracking graph node."""
    t = _new(Tensor)
    t.data = data
    t.requires_grad = True
    t._parents = parents
    t._vjp = vjp
    t.name = None
    return t


def _leaf(data):
    """Fast construction of a constant (non-tracking) tensor."""
    t = _new(Tensor)
    t.data = data
    t.requires_grad = False
    t._parents = ()
    t._vjp = None
    t.name = None
    return t


def _coerce(value):
    if isinstance(value, Tensor):
        return value
    return _leaf(np.asarray(value))


def _peer(value, peer_dtype):
    """Array for ``value`` as the peer operand of a tensor of ``peer_dtype``.

    Scalars adopt the tensor's dtype so float32 graphs are not silently
    promoted to float64 by literals like ``x * 2.0`` — whether the literal is
    a Python ``int``/``float``, a numpy scalar (``np.float64(2.0)``), or a
    0-d array.  Arrays with at least one dimension keep their own dtype: they
    carry data, not a literal, and a caller-supplied dtype stays meaningful.
    """
    if isinstance(value, (int, float)):
        return np.asarray(value, dtype=peer_dtype)
    arr = np.asarray(value)
    if arr.ndim == 0 and np.issubdtype(arr.dtype, np.number):
        return arr.astype(peer_dtype)
    return arr


def _pair(a, b):
    """Coerce a binary-op operand pair (scalars adopt the peer dtype)."""
    a_is = isinstance(a, Tensor)
    b_is = isinstance(b, Tensor)
    if a_is and b_is:
        return a, b
    if a_is:
        return a, _leaf(_peer(b, a.data.dtype))
    if b_is:
        return _leaf(_peer(a, b.data.dtype)), b
    return _coerce(a), _coerce(b)


def _make(data, parents, vjp):
    """Build an op result; prune the graph when no parent needs gradients."""
    for p in parents:
        if p.requires_grad:
            return _node(data, parents, vjp)
    return _leaf(data)


def _unbroadcast(grad, shape):
    """Reduce ``grad`` so its shape matches the pre-broadcast ``shape``."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = sum_(grad, axis=tuple(range(extra)))
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = sum_(grad, axis=axes, keepdims=True)
    if grad.shape != shape:
        grad = reshape(grad, shape)
    return grad


# ----------------------------------------------------------------------
# Arithmetic
# ----------------------------------------------------------------------
def add(a, b):
    """Elementwise ``a + b`` with numpy broadcasting."""
    a, b = _pair(a, b)
    data = a.data + b.data
    if not (a.requires_grad or b.requires_grad):
        return _leaf(data)
    a_shape, b_shape = a.data.shape, b.data.shape

    def vjp(g):
        return _unbroadcast(g, a_shape), _unbroadcast(g, b_shape)

    return _node(data, (a, b), vjp)


def sub(a, b):
    """Elementwise ``a - b`` with numpy broadcasting."""
    a, b = _pair(a, b)
    data = a.data - b.data
    if not (a.requires_grad or b.requires_grad):
        return _leaf(data)
    a_shape, b_shape = a.data.shape, b.data.shape

    def vjp(g):
        return _unbroadcast(g, a_shape), _unbroadcast(neg(g), b_shape)

    return _node(data, (a, b), vjp)


def mul(a, b):
    """Elementwise ``a * b`` with numpy broadcasting."""
    a, b = _pair(a, b)
    data = a.data * b.data
    if not (a.requires_grad or b.requires_grad):
        return _leaf(data)
    a_shape, b_shape = a.data.shape, b.data.shape

    def vjp(g):
        return (_unbroadcast(mul(g, b), a_shape),
                _unbroadcast(mul(g, a), b_shape))

    return _node(data, (a, b), vjp)


def div(a, b):
    """Elementwise ``a / b`` with numpy broadcasting."""
    a, b = _pair(a, b)
    data = a.data / b.data
    if not (a.requires_grad or b.requires_grad):
        return _leaf(data)
    a_shape, b_shape = a.data.shape, b.data.shape

    def vjp(g):
        ga = _unbroadcast(div(g, b), a_shape)
        gb = _unbroadcast(neg(div(mul(g, a), mul(b, b))), b_shape)
        return ga, gb

    return _node(data, (a, b), vjp)


def neg(a):
    """Elementwise negation."""
    a = _coerce(a)
    data = -a.data
    if not a.requires_grad:
        return _leaf(data)

    def vjp(g):
        return (neg(g),)

    return _node(data, (a,), vjp)


def power(a, exponent):
    """Elementwise ``a ** exponent`` for a constant scalar exponent."""
    a = _coerce(a)
    exponent = float(exponent)
    data = a.data ** exponent
    if not a.requires_grad:
        return _leaf(data)

    def vjp(g):
        return (mul(g, mul(exponent, power(a, exponent - 1.0))),)

    return _node(data, (a,), vjp)


def matmul(a, b):
    """Matrix product of two 2-D tensors."""
    a, b = _coerce(a), _coerce(b)
    if a.data.ndim != 2 or b.data.ndim != 2:
        raise ValueError(f"matmul expects 2-D tensors, got "
                         f"{a.data.shape} @ {b.data.shape}")
    data = a.data @ b.data
    if not (a.requires_grad or b.requires_grad):
        return _leaf(data)

    def vjp(g):
        return matmul(g, transpose(b)), matmul(transpose(a), g)

    return _node(data, (a, b), vjp)


# ----------------------------------------------------------------------
# Elementwise nonlinearities
# ----------------------------------------------------------------------
def exp(a):
    """Elementwise exponential."""
    a = _coerce(a)
    data = np.exp(a.data)
    if not a.requires_grad:
        return _leaf(data)
    out = _node(data, (a,), None)
    out._vjp = lambda g: (mul(g, out),)
    return out


def log(a):
    """Elementwise natural logarithm."""
    a = _coerce(a)
    data = np.log(a.data)
    if not a.requires_grad:
        return _leaf(data)

    def vjp(g):
        return (div(g, a),)

    return _node(data, (a,), vjp)


def sqrt(a):
    """Elementwise square root."""
    return power(a, 0.5)


def square(a):
    """Elementwise square."""
    a = _coerce(a)
    return mul(a, a)


def sin(a):
    """Elementwise sine."""
    a = _coerce(a)
    data = np.sin(a.data)
    if not a.requires_grad:
        return _leaf(data)

    def vjp(g):
        return (mul(g, cos(a)),)

    return _node(data, (a,), vjp)


def cos(a):
    """Elementwise cosine."""
    a = _coerce(a)
    data = np.cos(a.data)
    if not a.requires_grad:
        return _leaf(data)

    def vjp(g):
        return (neg(mul(g, sin(a))),)

    return _node(data, (a,), vjp)


def tanh(a):
    """Elementwise hyperbolic tangent."""
    a = _coerce(a)
    data = np.tanh(a.data)
    if not a.requires_grad:
        return _leaf(data)
    out = _node(data, (a,), None)
    out._vjp = lambda g: (mul(g, sub(1.0, mul(out, out))),)
    return out


def sigmoid(a):
    """Elementwise logistic sigmoid (clipped for stability)."""
    a = _coerce(a)
    x = np.clip(a.data, -60.0, 60.0)
    data = 1.0 / (1.0 + np.exp(-x))
    if not a.requires_grad:
        return _leaf(data)
    out = _node(data, (a,), None)
    out._vjp = lambda g: (mul(g, mul(out, sub(1.0, out))),)
    return out


def silu(a):
    """SiLU (swish) activation ``x * sigmoid(x)`` used by the paper's PINNs."""
    a = _coerce(a)
    return mul(a, sigmoid(a))


def relu(a):
    """Rectified linear unit."""
    a = _coerce(a)
    mask_data = (a.data > 0).astype(a.data.dtype)
    data = a.data * mask_data
    if not a.requires_grad:
        return _leaf(data)
    # the mask is wrapped as a constant leaf (not closed over as a raw
    # array) so the replay compiler can spot it and re-derive it per step
    mask = _leaf(mask_data)

    def vjp(g):
        return (mul(g, mask),)

    return _node(data, (a,), vjp)


def softplus(a):
    """Numerically stable ``log(1 + exp(x))``."""
    a = _coerce(a)
    data = np.logaddexp(0.0, a.data)
    if not a.requires_grad:
        return _leaf(data)

    def vjp(g):
        return (mul(g, sigmoid(a)),)

    return _node(data, (a,), vjp)


def absolute(a):
    """Elementwise absolute value (subgradient 0 at the origin is sign(0)=0)."""
    a = _coerce(a)
    data = np.abs(a.data)
    if not a.requires_grad:
        return _leaf(data)
    sign = _leaf(np.sign(a.data))

    def vjp(g):
        return (mul(g, sign),)

    return _node(data, (a,), vjp)


def maximum(a, b):
    """Elementwise maximum; ties send the full gradient to ``a``."""
    a, b = _pair(a, b)
    data = np.maximum(a.data, b.data)
    if not (a.requires_grad or b.requires_grad):
        return _leaf(data)
    # the selection mask carries the *result* dtype (not a hardcoded
    # float64, which silently upcast every float32 backward pass) and is a
    # constant leaf so the replay compiler can re-derive it per step
    take_a = _leaf((a.data >= b.data).astype(data.dtype))
    a_shape, b_shape = a.data.shape, b.data.shape

    def vjp(g):
        ga = _unbroadcast(mul(g, take_a), a_shape)
        gb = _unbroadcast(mul(g, sub(1.0, take_a)), b_shape)
        return ga, gb

    return _node(data, (a, b), vjp)


def minimum(a, b):
    """Elementwise minimum; ties send the full gradient to ``a``."""
    a, b = _pair(a, b)
    data = np.minimum(a.data, b.data)
    if not (a.requires_grad or b.requires_grad):
        return _leaf(data)
    take_a = _leaf((a.data <= b.data).astype(data.dtype))
    a_shape, b_shape = a.data.shape, b.data.shape

    def vjp(g):
        ga = _unbroadcast(mul(g, take_a), a_shape)
        gb = _unbroadcast(mul(g, sub(1.0, take_a)), b_shape)
        return ga, gb

    return _node(data, (a, b), vjp)


def where(condition, a, b):
    """Select from ``a`` where ``condition`` (a constant bool array) else ``b``."""
    cond = np.asarray(condition, dtype=bool)
    a, b = _coerce(a), _coerce(b)
    data = np.where(cond, a.data, b.data)
    if not (a.requires_grad or b.requires_grad):
        return _leaf(data)
    mask = _leaf(cond.astype(data.dtype))
    a_shape, b_shape = a.data.shape, b.data.shape

    def vjp(g):
        ga = _unbroadcast(mul(g, mask), a_shape)
        gb = _unbroadcast(mul(g, sub(1.0, mask)), b_shape)
        return ga, gb

    return _node(data, (a, b), vjp)


# ----------------------------------------------------------------------
# Shape manipulation and reductions
# ----------------------------------------------------------------------
def sum_(a, axis=None, keepdims=False):
    """Sum over ``axis`` (all axes when ``None``)."""
    a = _coerce(a)
    in_shape = a.data.shape

    if axis is None:
        axes = None
    elif isinstance(axis, int):
        axes = (axis % a.data.ndim,)
    else:
        axes = tuple(ax % a.data.ndim for ax in axis)

    data = a.data.sum(axis=axes, keepdims=keepdims)
    if not a.requires_grad:
        return _leaf(data)

    def vjp(g):
        if not keepdims and in_shape:
            reduced = axes if axes is not None else range(len(in_shape))
            kept = [1 if i in reduced else n for i, n in enumerate(in_shape)]
            g = reshape(g, tuple(kept))
        return (broadcast_to(g, in_shape),)

    return _node(data, (a,), vjp)


def mean(a, axis=None, keepdims=False):
    """Arithmetic mean over ``axis``."""
    a = _coerce(a)
    if axis is None:
        count = a.data.size
    elif isinstance(axis, int):
        count = a.data.shape[axis]
    else:
        count = int(np.prod([a.data.shape[ax] for ax in axis]))
    return div(sum_(a, axis=axis, keepdims=keepdims), float(count))


def reshape(a, shape):
    """Reshape to ``shape`` (must preserve the number of elements)."""
    a = _coerce(a)
    in_shape = a.data.shape
    data = a.data.reshape(shape)
    if not a.requires_grad:
        return _leaf(data)

    def vjp(g):
        return (reshape(g, in_shape),)

    return _node(data, (a,), vjp)


def transpose(a, axes=None):
    """Permute dimensions (reverse them when ``axes`` is ``None``)."""
    a = _coerce(a)
    data = np.transpose(a.data, axes)
    if not a.requires_grad:
        return _leaf(data)
    inverse = None if axes is None else tuple(np.argsort(axes))

    def vjp(g):
        return (transpose(g, inverse),)

    return _node(data, (a,), vjp)


def broadcast_to(a, shape):
    """Broadcast to ``shape`` following numpy rules."""
    a = _coerce(a)
    in_shape = a.data.shape
    data = np.broadcast_to(a.data, shape).copy()
    if not a.requires_grad:
        return _leaf(data)

    def vjp(g):
        return (_unbroadcast(g, in_shape),)

    return _node(data, (a,), vjp)


def concat(tensors, axis=0):
    """Concatenate tensors along ``axis``."""
    tensors = [_coerce(t) for t in tensors]
    axis_ = axis % tensors[0].data.ndim
    data = np.concatenate([t.data for t in tensors], axis=axis_)
    if not any(t.requires_grad for t in tensors):
        return _leaf(data)
    sizes = [t.data.shape[axis_] for t in tensors]
    offsets = np.cumsum([0] + sizes)
    ndim = data.ndim

    def vjp(g):
        grads = []
        for i in range(len(tensors)):
            index = [slice(None)] * ndim
            index[axis_] = slice(int(offsets[i]), int(offsets[i + 1]))
            grads.append(getitem(g, tuple(index)))
        return tuple(grads)

    return _node(data, tuple(tensors), vjp)


def _index_has_int_array(index):
    if isinstance(index, np.ndarray):
        return True
    if isinstance(index, tuple):
        return any(isinstance(part, np.ndarray) for part in index)
    return False


def getitem(a, index):
    """Basic indexing (ints, slices, tuples thereof, int arrays)."""
    a = _coerce(a)
    in_shape = a.data.shape
    data = a.data[index]
    if not a.requires_grad:
        return _leaf(data)

    def vjp(g):
        return (_scatter(g, in_shape, index),)

    return _node(data, (a,), vjp)


def _scatter(g, shape, index):
    """Adjoint of :func:`getitem`: place ``g`` into zeros of ``shape``."""
    g = _coerce(g)
    data = np.zeros(shape, dtype=g.data.dtype)
    if _index_has_int_array(index):
        np.add.at(data, index, g.data)   # integer arrays may repeat indices
    else:
        data[index] = g.data             # basic slices never alias
    if not g.requires_grad:
        return _leaf(data)

    def vjp(gg):
        return (getitem(gg, index),)

    return _node(data, (g,), vjp)


def zeros_like(a):
    """Constant tensor of zeros with the shape/dtype of ``a``."""
    a = _coerce(a)
    return _leaf(np.zeros_like(a.data))


def ones_like(a):
    """Constant tensor of ones with the shape/dtype of ``a``."""
    a = _coerce(a)
    return _leaf(np.ones_like(a.data))


# ----------------------------------------------------------------------
# Operator installation on Tensor
# ----------------------------------------------------------------------
def _install_operators():
    """Attach arithmetic dunders to :class:`Tensor` (runs once at import)."""
    Tensor.__add__ = lambda self, other: add(self, other)
    Tensor.__radd__ = lambda self, other: add(other, self)
    Tensor.__sub__ = lambda self, other: sub(self, other)
    Tensor.__rsub__ = lambda self, other: sub(other, self)
    Tensor.__mul__ = lambda self, other: mul(self, other)
    Tensor.__rmul__ = lambda self, other: mul(other, self)
    Tensor.__truediv__ = lambda self, other: div(self, other)
    Tensor.__rtruediv__ = lambda self, other: div(other, self)
    Tensor.__neg__ = lambda self: neg(self)
    Tensor.__pow__ = lambda self, exponent: power(self, exponent)
    Tensor.__matmul__ = lambda self, other: matmul(self, other)
    Tensor.__getitem__ = lambda self, index: getitem(self, index)
    Tensor.sum = lambda self, axis=None, keepdims=False: sum_(self, axis, keepdims)
    Tensor.mean = lambda self, axis=None, keepdims=False: mean(self, axis, keepdims)
    Tensor.reshape = lambda self, *shape: reshape(
        self, shape[0] if len(shape) == 1 and isinstance(shape[0], tuple) else shape)
    Tensor.T = property(lambda self: transpose(self))


_install_operators()
