"""Record-once/replay-many execution of the per-step autodiff graph.

Dynamic tape construction dominates small-batch PINN steps: every iteration
re-builds thousands of :class:`Tensor` nodes, VJP closures, and a topological
sort whose *structure* is identical step to step — only the batch data
changes.  This module compiles two provenance-recorded traces of one training
step (see :func:`repro.autodiff.introspect.record_tape`) into a
:class:`ReplayProgram`: a flat list of numpy instructions over preallocated
buffers that reproduces the recorded loss and parameter gradients
**bit-identically** while skipping all Python graph reconstruction.

Compilation pipeline
--------------------
1. **Alignment** — the two traces must match position-by-position in op,
   shape, dtype, and parent wiring; any structural difference between
   consecutive steps means the graph is data-dependent and compilation is
   refused (:class:`ReplayRefused`).
2. **Leaf classification** — every leaf of the live graph becomes a
   parameter slot (matched by object identity), a baked constant (bitwise
   stable across both traces), an external input slot (per-step tensors the
   trainer rebuilds from batch indices), a per-constraint weight slot
   (matched by array identity against the arrays the trainer multiplied into
   the loss), or a *recomputed* constant: provenance recovers the operands of
   graph subtrees the ops module constant-folded away (e.g. the mixing-length
   ``min`` over the non-differentiable SDF batch) so they replay as ordinary
   instructions.
3. **Shape gate** — the analyzer's per-op shape/dtype rules
   (:func:`repro.analysis.tape._verify_node`) run over every live node; a
   shape-inconsistent graph is refused rather than compiled.
4. **Emission** — dead nodes are dropped, duplicate subgraphs are emitted
   once (structural CSE), elementwise/matmul/reduction outputs write into
   preallocated buffers via ``out=``, and pure reindexings (reshape,
   transpose, basic slicing) stay views.
5. **Self-verification** — the program is run against both recorded traces
   (with each trace's parameter snapshot) and must reproduce the recorded
   loss and every gradient byte-for-byte, otherwise it is refused.

At run time :meth:`ReplayProgram.run` validates the per-step inputs against
the recorded slot layout and raises :class:`ReplayStale` on any mismatch
(changed batch size, dtype drift, a sampler that starts emitting weights),
letting the trainer fall back to eager execution permanently.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["ReplayProgram", "ReplayRefused", "ReplayStale", "StepTrace",
           "compile_step"]


class ReplayRefused(RuntimeError):
    """The recorded step cannot be compiled; the trainer stays eager."""


class ReplayStale(RuntimeError):
    """Per-step inputs no longer match the compiled tape's layout."""


class StepTrace:
    """One provenance-recorded training step: tape + outputs + context.

    Parameters
    ----------
    tape:
        The :class:`~repro.autodiff.introspect.Tape` recorded with
        ``provenance=True`` around loss assembly and ``gradients``.
    loss, grads:
        The recorded scalar loss tensor and per-parameter gradient tensors.
    param_data:
        Copies of every parameter array *as the traced step saw them* (taken
        before the optimizer update), so the compiler can re-run the trace.
    weight_arrays:
        Per-constraint combined sample×importance weight arrays (or ``None``)
        exactly as multiplied into the loss — matched by array identity to
        the constant leaves that wrap them.
    """

    __slots__ = ("tape", "loss", "grads", "param_data", "weight_arrays")

    def __init__(self, tape, loss, grads, param_data, weight_arrays):
        self.tape = tape
        self.loss = loss
        self.grads = grads
        self.param_data = param_data
        self.weight_arrays = weight_arrays


# ----------------------------------------------------------------------
# Provenance decoding: op frame locals -> (operand tensors, static args)
# ----------------------------------------------------------------------
#: ops whose pruned results / live nodes we know how to re-execute
_BINARY = {"add", "sub", "mul", "div", "maximum", "minimum", "matmul"}
_UNARY = {"neg", "exp", "log", "sin", "cos", "tanh", "softplus", "absolute",
          "sigmoid"}
#: ops that create an auxiliary mask leaf next to their result
_MASK_OPS = {"relu", "absolute", "maximum", "minimum", "where"}


def _decode(op, local, result):
    """``(operand tensors, statics)`` for an op's recorded frame locals.

    ``result`` is the created tensor (used for result-shape statics).
    Returns ``None`` when the op is not replayable.
    """
    if op in _BINARY:
        return (local["a"], local["b"]), {}
    if op == "relu":
        return (local["a"], local["mask"]), {}
    if op in _UNARY:
        return (local["a"],), {}
    if op == "power":
        return (local["a"],), {"exponent": local["exponent"]}
    if op == "where":
        return (local["a"], local["b"]), {"cond": local["cond"]}
    if op == "sum_":
        return (local["a"],), {"axes": local["axes"],
                               "keepdims": local["keepdims"]}
    if op == "reshape":
        return (local["a"],), {"shape": result.data.shape}
    if op == "transpose":
        return (local["a"],), {"axes": local["axes"]}
    if op == "broadcast_to":
        return (local["a"],), {"shape": result.data.shape}
    if op == "concat":
        return tuple(local["tensors"]), {"axis": local["axis_"]}
    if op == "getitem":
        return (local["a"],), {"index": local["index"]}
    if op == "_scatter":
        return (local["g"],), {"shape": local["shape"],
                               "index": local["index"]}
    return None


def _decode_mask(op, local, mask):
    """Recompute spec for an auxiliary mask leaf (relu/abs/max/min)."""
    dtype = mask.data.dtype
    if op == "relu":
        return "mask_gt0", (local["a"],), {"dtype": dtype}
    if op == "absolute":
        return "mask_sign", (local["a"],), {}
    if op == "maximum":
        return "mask_ge", (local["a"], local["b"]), {"dtype": dtype}
    if op == "minimum":
        return "mask_le", (local["a"], local["b"]), {"dtype": dtype}
    return None


def _digest(value):
    """Hashable, comparison-stable key for a static argument."""
    if isinstance(value, np.ndarray):
        return ("nd", value.shape, str(value.dtype), value.tobytes())
    if isinstance(value, np.dtype):
        return ("dt", str(value))
    if isinstance(value, (tuple, list)):
        return ("seq", tuple(_digest(v) for v in value))
    if isinstance(value, slice):
        return ("slice", value.start, value.stop, value.step)
    if isinstance(value, np.generic):
        return ("np", value.item())
    return value


def _stable(a, b):
    """Bitwise equality of two arrays (shape, dtype, and bytes)."""
    return (a.shape == b.shape and a.dtype == b.dtype
            and a.tobytes() == b.tobytes())


# ----------------------------------------------------------------------
# Instruction emitters
# ----------------------------------------------------------------------
#: ufunc-style ops that write into a preallocated buffer
_OUT_UFUNCS = {
    "add": np.add, "sub": np.subtract, "mul": np.multiply, "div": np.divide,
    "neg": np.negative, "exp": np.exp, "log": np.log, "sin": np.sin,
    "cos": np.cos, "tanh": np.tanh, "maximum": np.maximum,
    "minimum": np.minimum,
}


def _build_instruction(op, out, ins, st, bufs, alloc):
    """Return a zero-argument callable executing one replayed op.

    ``bufs`` is the shared buffer list; ``alloc`` the preallocated output
    array (already bound to ``bufs[out]``) for ops that support ``out=``,
    else ``None`` and the instruction rebinds ``bufs[out]`` per run.  Every
    expression mirrors the eager op in :mod:`repro.autodiff.ops` exactly, so
    replayed values are bit-identical.
    """
    ufunc = _OUT_UFUNCS.get(op)
    if ufunc is not None:
        if len(ins) == 1:
            a, = ins
            return lambda: ufunc(bufs[a], out=alloc)
        a, b = ins
        return lambda: ufunc(bufs[a], bufs[b], out=alloc)
    if op == "matmul":
        a, b = ins
        return lambda: np.matmul(bufs[a], bufs[b], out=alloc)
    if op == "relu":
        a, m = ins
        return lambda: np.multiply(bufs[a], bufs[m], out=alloc)
    if op == "absolute":
        a, = ins
        return lambda: np.abs(bufs[a], out=alloc)
    if op == "softplus":
        a, = ins
        return lambda: np.logaddexp(0.0, bufs[a], out=alloc)
    if op == "sigmoid":
        a, = ins

        def _sigmoid():
            x = np.clip(bufs[a], -60.0, 60.0)
            bufs[out] = 1.0 / (1.0 + np.exp(-x))
        return _sigmoid
    if op == "power":
        # ``**`` keeps numpy's special-cased exponents (0.5 -> sqrt, 2 ->
        # square) whose results differ in the last ulp from np.power
        a, = ins
        exponent = st["exponent"]

        def _power():
            bufs[out] = bufs[a] ** exponent
        return _power
    if op == "where":
        a, b = ins
        cond = st["cond"]

        def _where():
            bufs[out] = np.where(cond, bufs[a], bufs[b])
        return _where
    if op == "sum_":
        a, = ins
        axes, keepdims = st["axes"], st["keepdims"]
        return lambda: np.sum(bufs[a], axis=axes, keepdims=keepdims,
                              out=alloc)
    if op == "reshape":
        a, = ins
        shape = st["shape"]

        def _reshape():
            bufs[out] = bufs[a].reshape(shape)
        return _reshape
    if op == "transpose":
        a, = ins
        axes = st["axes"]

        def _transpose():
            bufs[out] = np.transpose(bufs[a], axes)
        return _transpose
    if op == "broadcast_to":
        a, = ins
        return lambda: np.copyto(alloc, bufs[a])
    if op == "concat":
        axis = st["axis"]
        parts = list(ins)
        return lambda: np.concatenate([bufs[i] for i in parts], axis=axis,
                                      out=alloc)
    if op == "getitem":
        a, = ins
        index = st["index"]

        def _getitem():
            bufs[out] = bufs[a][index]
        return _getitem
    if op == "_scatter":
        g, = ins
        index = st["index"]
        from .ops import _index_has_int_array
        if _index_has_int_array(index):
            def _scatter():
                alloc.fill(0)
                np.add.at(alloc, index, bufs[g])
        else:
            def _scatter():
                alloc.fill(0)
                alloc[index] = bufs[g]
        return _scatter
    if op == "detach":
        # pure aliasing: the detached leaf shares its source's array
        a, = ins

        def _detach():
            bufs[out] = bufs[a]
        return _detach
    if op == "mask_gt0":
        a, = ins
        dtype = st["dtype"]

        def _mask_gt0():
            bufs[out] = (bufs[a] > 0).astype(dtype)
        return _mask_gt0
    if op == "mask_sign":
        a, = ins

        def _mask_sign():
            bufs[out] = np.sign(bufs[a])
        return _mask_sign
    if op == "mask_ge":
        a, b = ins
        dtype = st["dtype"]

        def _mask_ge():
            bufs[out] = (bufs[a] >= bufs[b]).astype(dtype)
        return _mask_ge
    if op == "mask_le":
        a, b = ins
        dtype = st["dtype"]

        def _mask_le():
            bufs[out] = (bufs[a] <= bufs[b]).astype(dtype)
        return _mask_le
    return None


#: ops whose output buffer is preallocated and written via ``out=``
_ALLOC_OPS = (set(_OUT_UFUNCS) | {"matmul", "relu", "absolute", "softplus",
                                  "sum_", "broadcast_to", "concat",
                                  "_scatter"})


# ----------------------------------------------------------------------
# The compiled program
# ----------------------------------------------------------------------
class ReplayProgram:
    """A compiled training step: flat numpy instructions over buffers.

    Built by :func:`compile_step`; execute with :meth:`run`.  A program is
    specific to one (problem, sampler, batch-size, dtype) configuration —
    any drift raises :class:`ReplayStale` instead of silently replaying a
    wrong graph.
    """

    def __init__(self, params):
        self.params = list(params)
        self.bufs = []
        self.instructions = []
        #: (slot, param index) — refreshed from ``param.data`` every run
        self.param_slots = []
        #: (slot, external index, shape, dtype) for live external inputs
        self.external_slots = []
        self.n_externals = 0
        #: (slot, weight index, shape, dtype) for live weight inputs
        self.weight_slots = []
        #: per-weight-position: None or (shape, dtype) — the full layout
        self.weight_layout = []
        self.loss_slot = None
        self.grad_slots = []
        #: diagnostics: how many recorded tensors each optimisation removed
        self.stats = {}

    def run(self, externals, weights, param_data=None):
        """Execute one step; returns ``(loss_array, gradient_arrays)``.

        Parameters
        ----------
        externals:
            Per-step input arrays, one per recorded external tensor, in
            creation order (``Trainer`` rebuilds them from batch indices via
            ``Constraint.replay_inputs``).
        weights:
            Per-constraint combined weight arrays (``None`` entries where
            the recorded step had none).
        param_data:
            Optional parameter-array override (compile-time verification
            re-runs the recorded traces under their own snapshots); defaults
            to the live ``param.data`` arrays.

        Raises
        ------
        ReplayStale
            When any input's presence, shape, or dtype differs from the
            recorded layout.
        """
        bufs = self.bufs
        if len(externals) != self.n_externals:
            raise ReplayStale(f"expected {self.n_externals} external inputs, "
                              f"got {len(externals)}")
        if len(weights) != len(self.weight_layout):
            raise ReplayStale(f"expected {len(self.weight_layout)} weight "
                              f"entries, got {len(weights)}")
        for position, spec in enumerate(self.weight_layout):
            weight = weights[position]
            if (spec is None) != (weight is None):
                raise ReplayStale(f"weight {position} "
                                  f"{'appeared' if spec is None else 'vanished'}"
                                  f" relative to the recorded step")
        for slot, position, shape, dtype in self.external_slots:
            array = externals[position]
            if array.shape != shape or array.dtype != dtype:
                raise ReplayStale(
                    f"external input {position}: got {array.shape} "
                    f"{array.dtype}, recorded {shape} {dtype}")
            bufs[slot] = array
        for slot, position, shape, dtype in self.weight_slots:
            array = weights[position]
            if array.shape != shape or array.dtype != dtype:
                raise ReplayStale(
                    f"weight {position}: got {array.shape} {array.dtype}, "
                    f"recorded {shape} {dtype}")
            bufs[slot] = array
        if param_data is None:
            for slot, index in self.param_slots:
                bufs[slot] = self.params[index].data
        else:
            for slot, index in self.param_slots:
                bufs[slot] = param_data[index]
        for instruction in self.instructions:
            instruction()
        return bufs[self.loss_slot], [bufs[s] for s in self.grad_slots]


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
def _op_label(tape, tensor):
    info = tape.info.get(id(tensor))
    return info["op"] if info else None


def _align(trace0, trace1):
    """Verify the two traces are structurally identical; map id -> position."""
    order0, order1 = trace0.tape.order, trace1.tape.order
    if len(order0) != len(order1):
        raise ReplayRefused(
            f"graph size changed between consecutive steps "
            f"({len(order0)} vs {len(order1)} tensors) — data-dependent "
            f"structure cannot be replayed")
    pos0 = {id(t): i for i, t in enumerate(order0)}
    pos1 = {id(t): i for i, t in enumerate(order1)}
    ext0 = {id(t) for t in trace0.tape.externals}
    ext1 = {id(t) for t in trace1.tape.externals}
    for i, (a, b) in enumerate(zip(order0, order1)):
        if (id(a) in ext0) != (id(b) in ext1):
            raise ReplayRefused(f"tensor {i} changed kind between steps")
        if a.data.shape != b.data.shape or a.data.dtype != b.data.dtype:
            raise ReplayRefused(
                f"tensor {i} changed shape/dtype between steps: "
                f"{a.data.shape}/{a.data.dtype} vs "
                f"{b.data.shape}/{b.data.dtype}")
        if len(a._parents) != len(b._parents):
            raise ReplayRefused(f"tensor {i} changed arity between steps")
        label0 = _op_label(trace0.tape, a)
        label1 = _op_label(trace1.tape, b)
        if label0 != label1:
            raise ReplayRefused(f"tensor {i} changed op between steps: "
                                f"{label0} vs {label1}")
        for p, q in zip(a._parents, b._parents):
            i0, i1 = pos0.get(id(p)), pos1.get(id(q))
            if i0 is None and i1 is None:
                if p is not q:
                    raise ReplayRefused(
                        f"tensor {i} reads different pre-existing tensors "
                        f"in consecutive steps")
            elif i0 != i1:
                raise ReplayRefused(
                    f"tensor {i} re-wired its inputs between steps")
    return pos0, pos1


def _operands_of(trace, tensor):
    """Dependency tensors for the live-set walk (nodes and pruned leaves)."""
    if tensor._parents:
        deps = list(tensor._parents)
        # relu keeps its mask leaf out of ``_parents`` (gradients must not
        # flow into it) but the forward replay multiplies by it
        info = trace.tape.info.get(id(tensor))
        if info and info["op"] == "relu":
            deps.append(info["locals"]["mask"])
        return deps
    info = trace.tape.info.get(id(tensor))
    if info is None:
        return ()
    if info["op"] == "detach":
        return (info["locals"]["self"],)
    if info["is_result"]:
        decoded = _decode(info["op"], info["locals"], tensor)
        return decoded[0] if decoded else ()
    decoded = _decode_mask(info["op"], info["locals"], tensor)
    return decoded[1] if decoded else ()


def compile_step(trace0, trace1, params):
    """Compile two consecutive step traces into a :class:`ReplayProgram`.

    Raises :class:`ReplayRefused` whenever the recorded step cannot be
    replayed exactly; the caller is expected to fall back to eager
    execution.
    """
    # imported here: analysis sits above autodiff in the layer order, and
    # its shape/dtype rules gate compilation (ISSUE: refuse to compile a
    # shape-inconsistent graph) without making autodiff depend on it at
    # import time
    from ..analysis.tape import _verify_node

    tape0 = trace0.tape
    pos0, _ = _align(trace0, trace1)
    order0, order1 = tape0.order, trace1.tape.order

    param_index = {id(p): i for i, p in enumerate(params)}
    external_index = {id(t): i for i, t in enumerate(tape0.externals)}
    weight_index = {}
    for w, array in enumerate(trace0.weight_arrays):
        if array is not None:
            weight_index[id(array)] = w

    loss, grads = trace0.loss, trace0.grads
    if not isinstance(loss, Tensor) or loss.data.size != 1:
        raise ReplayRefused("recorded loss is not a scalar tensor")

    # ------------------------------------------------------------------
    # Live set: everything the loss + gradients depend on, transitively,
    # following provenance through pruned (constant-folded) subgraphs.
    # ------------------------------------------------------------------
    live = {}
    stack = [loss] + list(grads)
    while stack:
        tensor = stack.pop()
        if id(tensor) in live:
            continue
        live[id(tensor)] = tensor
        stack.extend(_operands_of(trace0, tensor))

    # ------------------------------------------------------------------
    # Shape gate: the analyzer's per-op rules must hold on every live node.
    # ------------------------------------------------------------------
    issues = []
    for tensor in live.values():
        if tensor._parents:
            _verify_node(tensor, issues)
    if issues:
        first = issues[0]
        raise ReplayRefused(
            f"shape-inconsistent graph: {len(issues)} issue(s), first: "
            f"{first['kind']} mismatch in {first['op']} "
            f"({first['parents']} -> {first['actual']})")

    program = ReplayProgram(params)
    bufs = program.bufs
    slot_of = {}
    cse = {}
    key_of = {}
    interned = {}

    def intern(key):
        # canonical small id per structural key: parents build their CSE
        # keys from operand *ids*, not nested subtree keys — nesting makes
        # key hashing quadratic in graph depth (and drags every baked
        # constant's tobytes() into each ancestor's key)
        return interned.setdefault(key, len(interned))
    stats = {"recorded": len(order0), "live": 0, "dead": 0, "baked": 0,
             "recomputed_folds": 0, "cse_hits": 0, "instructions": 0}

    def new_slot(value=None):
        bufs.append(value)
        return len(bufs) - 1

    def bake(tensor):
        key = ("baked", tensor.data.shape, str(tensor.data.dtype),
               tensor.data.tobytes())
        slot = cse.get(key)
        if slot is None:
            slot = new_slot(tensor.data)
            cse[key] = slot
            stats["baked"] += 1
        else:
            stats["cse_hits"] += 1
        return slot, intern(key)

    def emit(op, tensor, operand_tensors, statics, statics1):
        """CSE-aware instruction emission; returns the output slot."""
        if _digest(tuple(statics.values())) != _digest(tuple(statics1.values())):
            raise ReplayRefused(
                f"{op} static arguments changed between steps")
        try:
            in_slots = tuple(slot_of[id(t)] for t in operand_tensors)
        except KeyError:
            raise ReplayRefused(
                f"{op} reads a tensor created out of order")
        key = (op, tuple(key_of[id(t)] for t in operand_tensors),
               _digest(tuple(sorted((k, _digest(v))
                                    for k, v in statics.items()))))
        slot = cse.get(key)
        if slot is not None:
            stats["cse_hits"] += 1
            return slot, intern(key)
        alloc = None
        if op in _ALLOC_OPS:
            alloc = np.empty(tensor.data.shape, tensor.data.dtype)
        slot = new_slot(alloc)
        instruction = _build_instruction(op, slot, in_slots, statics, bufs,
                                         alloc)
        if instruction is None:
            raise ReplayRefused(f"op {op!r} has no replay rule")
        program.instructions.append(instruction)
        stats["instructions"] += 1
        cse[key] = slot
        return slot, intern(key)

    # ------------------------------------------------------------------
    # Pre-existing tensors (parameters, build-time constants like Fourier
    # frequency matrices) referenced by live nodes but created before
    # recording started get their slots first: the creation-order walk
    # resolves operand slots at emission time.
    # ------------------------------------------------------------------
    for tensor in live.values():
        if id(tensor) in pos0:
            continue
        index = param_index.get(id(tensor))
        if index is not None:
            slot = new_slot()
            program.param_slots.append((slot, index))
            slot_of[id(tensor)] = slot
            key_of[id(tensor)] = intern(("param", index))
        else:
            slot_of[id(tensor)], key_of[id(tensor)] = bake(tensor)

    # ------------------------------------------------------------------
    # Walk the recorded order; classify and emit every live tensor.
    # ------------------------------------------------------------------
    for position, tensor in enumerate(order0):
        if id(tensor) not in live:
            stats["dead"] += 1
            continue
        stats["live"] += 1
        mirror = order1[position]
        info = tape0.info.get(id(tensor))

        if tensor._parents:                      # a graph node
            op = info["op"] if info else None
            decoded = op and _decode(op, info["locals"], tensor)
            if not decoded:
                raise ReplayRefused(f"node {position} ({op!r}) is not "
                                    f"replayable")
            operand_tensors, statics = decoded
            info1 = trace1.tape.info[id(mirror)]
            _, statics1 = _decode(op, info1["locals"], mirror)
            slot_of[id(tensor)], key_of[id(tensor)] = emit(
                op, tensor, operand_tensors, statics, statics1)
            continue

        if id(tensor) in external_index:         # per-step trainer input
            index = external_index[id(tensor)]
            slot = new_slot()
            program.external_slots.append(
                (slot, index, tensor.data.shape, tensor.data.dtype))
            slot_of[id(tensor)] = slot
            key_of[id(tensor)] = intern(("ext", index))
            continue

        if id(tensor) in param_index:            # shouldn't happen: params
            raise ReplayRefused("a parameter was re-created inside the "
                                "recorded region")

        if id(tensor.data) in weight_index:
            # constant leaf wrapping a trainer-supplied weight array —
            # matched by array identity, NOT by value stability: importance
            # weights can be bitwise-equal for many steps (MIS pre-refresh
            # emits exact ones) and still must stay per-step inputs
            index = weight_index[id(tensor.data)]
            if trace1.weight_arrays[index] is not mirror.data:
                raise ReplayRefused("weight arrays bind to different "
                                    "constraints in consecutive steps")
            key = ("weight", index)
            slot = cse.get(key)
            if slot is None:
                slot = new_slot()
                cse[key] = slot
                program.weight_slots.append(
                    (slot, index, tensor.data.shape, tensor.data.dtype))
            slot_of[id(tensor)] = slot
            key_of[id(tensor)] = intern(key)
            continue

        op = info["op"] if info else None
        if op == "detach":
            # a gradient-stopped alias of a graph value (frozen-viscosity
            # diffusion); replays as a buffer rebind
            slot_of[id(tensor)], key_of[id(tensor)] = emit(
                "detach", tensor, (info["locals"]["self"],), {}, {})
            stats["recomputed_folds"] += 1
            continue
        if info and info["is_result"] and op and \
                _decode(op, info["locals"], tensor):
            # a constant-folded subgraph result (all operands non-grad):
            # provenance recovered its operands, replay it as a normal
            # instruction so per-step values (e.g. SDF-derived mixing
            # lengths) stay exact
            operand_tensors, statics = _decode(op, info["locals"], tensor)
            info1 = trace1.tape.info[id(mirror)]
            _, statics1 = _decode(op, info1["locals"], mirror)
            slot_of[id(tensor)], key_of[id(tensor)] = emit(
                op, tensor, operand_tensors, statics, statics1)
            stats["recomputed_folds"] += 1
            continue

        if info and not info["is_result"] and op in _MASK_OPS:
            decoded = _decode_mask(op, info["locals"], tensor)
            if decoded is not None:
                mask_op, operand_tensors, statics = decoded
                slot_of[id(tensor)], key_of[id(tensor)] = emit(
                    mask_op, tensor, operand_tensors, statics, statics)
                continue
            # ``where`` masks derive from a static condition array: baked
            # below if stable, refused otherwise

        if _stable(tensor.data, mirror.data):    # step-invariant constant
            slot_of[id(tensor)], key_of[id(tensor)] = bake(tensor)
            continue

        raise ReplayRefused(
            f"constant {position} ({op or 'raw'}) varies between steps "
            f"with no recoverable provenance")

    program.n_externals = len(tape0.externals)
    program.weight_layout = [
        None if a is None else (a.shape, a.dtype)
        for a in trace0.weight_arrays]
    missing = [t for t in [loss] + list(grads) if id(t) not in slot_of]
    if missing:
        raise ReplayRefused("an output tensor was not assigned a slot")
    program.loss_slot = slot_of[id(loss)]
    program.grad_slots = [slot_of[id(g)] for g in grads]
    program.stats = stats

    _self_verify(program, trace0)
    _self_verify(program, trace1)
    return program


def _self_verify(program, trace):
    """Re-run the compiled program against a recorded trace, bit-for-bit."""
    externals = [t.data for t in trace.tape.externals]
    try:
        loss_value, grads = program.run(externals, trace.weight_arrays,
                                        param_data=trace.param_data)
    except ReplayStale as exc:
        raise ReplayRefused(f"self-verification could not run: {exc}")
    if not _stable(np.asarray(loss_value), trace.loss.data):
        raise ReplayRefused(
            f"self-verification failed: replayed loss "
            f"{np.asarray(loss_value)} != recorded {trace.loss.data}")
    for index, (replayed, recorded) in enumerate(zip(grads, trace.grads)):
        if not _stable(replayed, recorded.data):
            raise ReplayRefused(
                f"self-verification failed: gradient {index} diverges from "
                f"the recorded trace")
