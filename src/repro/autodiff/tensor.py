"""Core ``Tensor`` type for the reverse-mode automatic differentiation engine.

A :class:`Tensor` wraps a ``numpy.ndarray`` and, when it is the result of a
primitive operation, remembers its parent tensors together with a
vector-Jacobian-product (VJP) callback.  VJP callbacks are written in terms of
other primitive operations, so the backward pass of
:func:`repro.autodiff.functional.gradients` produces tensors that are
themselves differentiable.  This is what lets PINN residuals take second (and
higher) derivatives of network outputs with respect to network inputs.

Operator overloading (``+``, ``*``, ``@`` ...) is installed by
:mod:`repro.autodiff.ops` at import time; the class itself stays minimal.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "as_tensor"]

#: optional callback invoked with every tensor built through ``Tensor.__init__``
#: (NOT the ops-module fast constructors).  ``record_tape(provenance=True)``
#: installs it to log per-step *external* inputs — batch coordinate columns,
#: boundary targets, measurement data — which the replay compiler turns into
#: input slots.  ``None`` (the default) costs one global load per construction.
_creation_hook = None


class Tensor:
    """A numpy-backed array node in a dynamically built computation graph.

    Parameters
    ----------
    data:
        Array (or scalar) payload.  Stored as ``numpy.ndarray``.
    requires_grad:
        Whether gradients should flow to this tensor.  Results of primitive
        operations derive this flag from their parents.
    parents:
        Parent tensors this node was computed from (empty for leaves).
    vjp:
        Callback mapping the cotangent of this node to a tuple of cotangents,
        one per parent (``None`` entries are allowed for non-differentiable
        parents).  Must be built from primitive ops so that it is itself
        differentiable.
    name:
        Optional label used in ``repr`` and error messages.
    """

    __slots__ = ("data", "requires_grad", "_parents", "_vjp", "name")

    def __init__(self, data, requires_grad=False, parents=(), vjp=None, name=None):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data)
        self.requires_grad = bool(requires_grad)
        self._parents = tuple(parents)
        self._vjp = vjp
        self.name = name
        hook = _creation_hook
        if hook is not None:
            hook(self)

    # ------------------------------------------------------------------
    # Array-like introspection
    # ------------------------------------------------------------------
    @property
    def shape(self):
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self):
        """Number of dimensions of the underlying array."""
        return self.data.ndim

    @property
    def size(self):
        """Total number of elements."""
        return self.data.size

    @property
    def dtype(self):
        """Dtype of the underlying array."""
        return self.data.dtype

    @property
    def is_leaf(self):
        """True when the tensor was not produced by a primitive op."""
        return not self._parents

    def numpy(self):
        """Return the underlying ``numpy.ndarray`` (no copy)."""
        return self.data

    def item(self):
        """Return the value of a single-element tensor as a Python scalar."""
        return self.data.item()

    def detach(self):
        """Return a new leaf tensor sharing this tensor's data.

        Gradients do not flow through the returned tensor; use it to stop
        gradient propagation (e.g. for loss normalisation constants).
        Routed through the ops module's leaf constructor so a recording
        tape sees the detached leaf as graph-derived (operand recoverable
        from provenance), not as a per-step external input.
        """
        from . import ops
        return ops._leaf(self.data)

    def __len__(self):
        return len(self.data)

    def __repr__(self):
        label = f" name={self.name!r}" if self.name else ""
        grad = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}, dtype={self.data.dtype}{grad}{label})"

    # Prevent numpy from hijacking ``ndarray <op> Tensor`` expressions: numpy
    # sees this attribute and defers to the Tensor's reflected operators.
    __array_priority__ = 100.0


def as_tensor(value, dtype=None):
    """Coerce ``value`` to a :class:`Tensor` (no-op for tensors).

    Parameters
    ----------
    value:
        Tensor, array, or scalar.
    dtype:
        Optional dtype used when converting non-tensor input.
    """
    if isinstance(value, Tensor):
        return value
    data = np.asarray(value, dtype=dtype)
    return Tensor(data)
