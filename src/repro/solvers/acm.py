"""Artificial-compressibility Navier-Stokes solver on a masked Cartesian grid.

This is the repo's stand-in for the paper's OpenFOAM validation data: a
classical finite-difference solver (Chorin's artificial compressibility with
first-order upwind convection and face-centred variable viscosity) that
marches the 2-D incompressible equations to steady state:

    du/dt + u u_x + v u_y = -p_x / rho + div(nu_eff grad u)
    dv/dt + u v_x + v v_y = -p_y / rho + div(nu_eff grad v)
    dp/dt = -beta (u_x + v_y)

A boolean mask selects fluid cells, so arbitrary geometries (the LDC cavity,
the channel + annular-ring domain) reuse one core.  Boundary values are
re-imposed after every step by caller-supplied callbacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ACMSolver", "ACMResult"]


@dataclass
class ACMResult:
    """Converged flow field on the solver grid.

    ``u``/``v``/``p`` are ``(ny, nx)`` arrays; cells outside ``mask`` hold
    zeros.  ``residual_history`` records the max velocity change per step
    (diagnostic for convergence behaviour).
    """

    xs: np.ndarray
    ys: np.ndarray
    u: np.ndarray
    v: np.ndarray
    p: np.ndarray
    mask: np.ndarray
    steps: int
    final_residual: float
    residual_history: np.ndarray = field(repr=False, default=None)


class ACMSolver:
    """Pseudo-transient artificial-compressibility integrator.

    Parameters
    ----------
    xs, ys:
        Uniform grid coordinates.
    mask:
        ``(ny, nx)`` boolean fluid mask.
    nu:
        Molecular kinematic viscosity.
    rho:
        Density.
    beta:
        Artificial compressibility (pressure wave speed squared); larger
        enforces incompressibility faster but shrinks the stable step.
    viscosity_model:
        Optional callable ``(u, v, dx, dy, mask) -> nu_t`` adding a
        turbulent viscosity field (e.g. the zero-equation closure).
    """

    def __init__(self, xs, ys, mask, nu, rho=1.0, beta=None,
                 viscosity_model=None):
        self.xs = np.asarray(xs, dtype=np.float64)
        self.ys = np.asarray(ys, dtype=np.float64)
        self.dx = float(self.xs[1] - self.xs[0])
        self.dy = float(self.ys[1] - self.ys[0])
        self.mask = np.asarray(mask, dtype=bool)
        self.nu = float(nu)
        self.rho = float(rho)
        self.beta = float(beta) if beta is not None else None
        self.viscosity_model = viscosity_model

    def _time_step(self, velocity_scale, nu_max):
        beta = self.beta if self.beta is not None else \
            max(5.0 * velocity_scale ** 2, 1.0)
        wave = velocity_scale + np.sqrt(beta)
        h = min(self.dx, self.dy)
        dt_conv = h / max(wave, 1e-12)
        dt_visc = 0.25 * h * h / max(nu_max, 1e-12)
        return 0.6 * min(dt_conv, dt_visc), beta

    def solve(self, apply_bcs, velocity_scale=1.0, max_steps=20000, tol=1e-6,
              check_every=50):
        """March to steady state.

        Parameters
        ----------
        apply_bcs:
            Callback ``(u, v, p) -> None`` enforcing boundary values in
            place after every step (also called once on the zero initial
            field).
        velocity_scale:
            Characteristic speed for the CFL estimate.
        max_steps, tol, check_every:
            Stop when the max velocity update per step falls below ``tol``
            (checked every ``check_every`` steps) or at ``max_steps``.
        """
        ny, nx = self.mask.shape
        u = np.zeros((ny, nx))
        v = np.zeros((ny, nx))
        p = np.zeros((ny, nx))
        apply_bcs(u, v, p)

        interior = self.mask.copy()
        interior[0, :] = interior[-1, :] = False
        interior[:, 0] = interior[:, -1] = False
        # interior fluid cells with all four neighbours also fluid-or-wall
        dx, dy = self.dx, self.dy
        history = []
        residual = np.inf
        step = 0
        for step in range(1, max_steps + 1):
            nu_eff = np.full((ny, nx), self.nu)
            if self.viscosity_model is not None:
                nu_eff = nu_eff + self.viscosity_model(u, v, dx, dy, self.mask)
            dt, beta = self._time_step(velocity_scale, float(nu_eff.max()))

            # upwind convection
            ux_b = (u - np.roll(u, 1, axis=1)) / dx
            ux_f = (np.roll(u, -1, axis=1) - u) / dx
            uy_b = (u - np.roll(u, 1, axis=0)) / dy
            uy_f = (np.roll(u, -1, axis=0) - u) / dy
            vx_b = (v - np.roll(v, 1, axis=1)) / dx
            vx_f = (np.roll(v, -1, axis=1) - v) / dx
            vy_b = (v - np.roll(v, 1, axis=0)) / dy
            vy_f = (np.roll(v, -1, axis=0) - v) / dy
            conv_u = (np.where(u > 0, u * ux_b, u * ux_f) +
                      np.where(v > 0, v * uy_b, v * uy_f))
            conv_v = (np.where(u > 0, u * vx_b, u * vx_f) +
                      np.where(v > 0, v * vy_b, v * vy_f))

            # variable-viscosity diffusion with face-averaged nu
            nu_e = 0.5 * (nu_eff + np.roll(nu_eff, -1, axis=1))
            nu_w = 0.5 * (nu_eff + np.roll(nu_eff, 1, axis=1))
            nu_n = 0.5 * (nu_eff + np.roll(nu_eff, -1, axis=0))
            nu_s = 0.5 * (nu_eff + np.roll(nu_eff, 1, axis=0))

            def diffuse(f):
                return ((nu_e * (np.roll(f, -1, axis=1) - f) -
                         nu_w * (f - np.roll(f, 1, axis=1))) / dx ** 2 +
                        (nu_n * (np.roll(f, -1, axis=0) - f) -
                         nu_s * (f - np.roll(f, 1, axis=0))) / dy ** 2)

            px = (np.roll(p, -1, axis=1) - np.roll(p, 1, axis=1)) / (2 * dx)
            py = (np.roll(p, -1, axis=0) - np.roll(p, 1, axis=0)) / (2 * dy)

            du = dt * (-conv_u - px / self.rho + diffuse(u))
            dv = dt * (-conv_v - py / self.rho + diffuse(v))
            u_new = np.where(interior, u + du, u)
            v_new = np.where(interior, v + dv, v)

            div = ((np.roll(u_new, -1, axis=1) - np.roll(u_new, 1, axis=1))
                   / (2 * dx) +
                   (np.roll(v_new, -1, axis=0) - np.roll(v_new, 1, axis=0))
                   / (2 * dy))
            p = np.where(interior, p - dt * beta * div, p)

            change = max(np.abs(du[interior]).max(initial=0.0),
                         np.abs(dv[interior]).max(initial=0.0))
            u, v = u_new, v_new
            apply_bcs(u, v, p)

            if step % check_every == 0:
                # normalized rate of change: |du/dt| / U
                residual = change / (dt * max(velocity_scale, 1e-12))
                history.append(residual)
                if residual < tol:
                    break

        u[~self.mask] = 0.0
        v[~self.mask] = 0.0
        p[~self.mask] = 0.0
        return ACMResult(xs=self.xs, ys=self.ys, u=u, v=v, p=p,
                         mask=self.mask, steps=step,
                         final_residual=float(residual),
                         residual_history=np.asarray(history))
