"""Classical reference solvers substituting for the paper's OpenFOAM data."""

from .acm import ACMSolver, ACMResult
from .ghia import GHIA_X, GHIA_Y, ghia_u_centerline, ghia_v_centerline
from .ldc import solve_ldc, zero_eq_viscosity_field, ldc_wall_distance
from .annulus import annulus_mask, solve_annulus, ANNULUS_DEFAULTS
from .poisson_fdm import solve_poisson_dirichlet
from .cache import cache_dir, get_or_compute

__all__ = [
    "ACMSolver", "ACMResult",
    "GHIA_X", "GHIA_Y", "ghia_u_centerline", "ghia_v_centerline",
    "solve_ldc", "zero_eq_viscosity_field", "ldc_wall_distance",
    "annulus_mask", "solve_annulus", "ANNULUS_DEFAULTS",
    "solve_poisson_dirichlet", "cache_dir", "get_or_compute",
]
