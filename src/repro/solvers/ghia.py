"""Ghia, Ghia & Shin (1982) lid-driven-cavity benchmark tables.

Centerline velocities for the square cavity with a unit lid, the canonical
validation data for LDC solvers.  Values transcribed from Table I/II of the
paper (u along the vertical centerline x=0.5; v along the horizontal
centerline y=0.5).
"""

from __future__ import annotations

import numpy as np

__all__ = ["GHIA_Y", "GHIA_X", "ghia_u_centerline", "ghia_v_centerline"]

#: y-locations of the u-velocity table (bottom wall to lid)
GHIA_Y = np.array([
    0.0000, 0.0547, 0.0625, 0.0703, 0.1016, 0.1719, 0.2813, 0.4531,
    0.5000, 0.6172, 0.7344, 0.8516, 0.9531, 0.9609, 0.9688, 0.9766, 1.0000,
])

#: x-locations of the v-velocity table
GHIA_X = np.array([
    0.0000, 0.0625, 0.0703, 0.0781, 0.0938, 0.1563, 0.2266, 0.2344,
    0.5000, 0.8047, 0.8594, 0.9063, 0.9453, 0.9531, 0.9609, 0.9688, 1.0000,
])

_U_TABLES = {
    100: np.array([
        0.00000, -0.03717, -0.04192, -0.04775, -0.06434, -0.10150,
        -0.15662, -0.21090, -0.20581, -0.13641, 0.00332, 0.23151,
        0.68717, 0.73722, 0.78871, 0.84123, 1.00000,
    ]),
    1000: np.array([
        0.00000, -0.18109, -0.20196, -0.22220, -0.29730, -0.38289,
        -0.27805, -0.10648, -0.06080, 0.05702, 0.18719, 0.33304,
        0.46604, 0.51117, 0.57492, 0.65928, 1.00000,
    ]),
}

_V_TABLES = {
    100: np.array([
        0.00000, 0.09233, 0.10091, 0.10890, 0.12317, 0.16077,
        0.17507, 0.17527, 0.05454, -0.24533, -0.22445, -0.16914,
        -0.10313, -0.08864, -0.07391, -0.05906, 0.00000,
    ]),
    1000: np.array([
        0.00000, 0.27485, 0.29012, 0.30353, 0.32627, 0.37095,
        0.33075, 0.32235, 0.02526, -0.31966, -0.42665, -0.51550,
        -0.39188, -0.33714, -0.27669, -0.21388, 0.00000,
    ]),
}


def ghia_u_centerline(reynolds):
    """``(y, u)`` arrays along the vertical centerline for the given Re."""
    if reynolds not in _U_TABLES:
        raise KeyError(f"no Ghia table for Re={reynolds}; "
                       f"have {sorted(_U_TABLES)}")
    return GHIA_Y.copy(), _U_TABLES[reynolds].copy()


def ghia_v_centerline(reynolds):
    """``(x, v)`` arrays along the horizontal centerline for the given Re."""
    if reynolds not in _V_TABLES:
        raise KeyError(f"no Ghia table for Re={reynolds}; "
                       f"have {sorted(_V_TABLES)}")
    return GHIA_X.copy(), _V_TABLES[reynolds].copy()
