"""Reference lid-driven-cavity solution (paper §4.1's validation data).

Solves the unit cavity with a moving top lid using the artificial-
compressibility core, optionally with the same zero-equation eddy viscosity
the PINN uses, so the reference and the network discretize the *same* PDE.
"""

from __future__ import annotations

import numpy as np

from .acm import ACMSolver

__all__ = ["solve_ldc", "zero_eq_viscosity_field", "ldc_wall_distance"]


def ldc_wall_distance(xs, ys):
    """Distance to the nearest cavity wall on the grid."""
    gx, gy = np.meshgrid(xs, ys)
    return np.minimum.reduce([gx - xs[0], xs[-1] - gx, gy - ys[0],
                              ys[-1] - gy])


def zero_eq_viscosity_field(u, v, wall_distance, max_distance, rho=1.0,
                            kappa=0.419, cap=0.09, dx=None, dy=None):
    """Algebraic zero-equation eddy viscosity on a grid (Modulus closure).

    ``nu_t = rho * min(kappa d, cap d_max)^2 * sqrt(2 u_x^2 + 2 v_y^2 +
    (u_y + v_x)^2)`` with central-difference gradients.
    """
    du_dy, du_dx = np.gradient(u, dy, dx)
    dv_dy, dv_dx = np.gradient(v, dy, dx)
    g = 2.0 * du_dx ** 2 + 2.0 * dv_dy ** 2 + (du_dy + dv_dx) ** 2
    l_m = np.minimum(kappa * np.maximum(wall_distance, 0.0),
                     cap * max_distance)
    return rho * l_m ** 2 * np.sqrt(g)


def solve_ldc(reynolds=1000.0, resolution=97, lid_velocity=1.0,
              turbulent=False, max_steps=40000, tol=2e-5):
    """Solve the steady lid-driven cavity on the unit square.

    Parameters
    ----------
    reynolds:
        ``U L / nu`` with L = 1 and U = ``lid_velocity``.
    resolution:
        Grid points per side.
    turbulent:
        Include the zero-equation closure in the momentum diffusion, making
        the reference consistent with the paper's LDC_zeroEq setup.
    max_steps, tol:
        Forwarded to :meth:`ACMSolver.solve`.

    Returns
    -------
    ACMResult with an extra attribute-like field: the returned object's
    ``p`` is pressure, and a ``nu_t`` array is attached post-hoc.
    """
    xs = np.linspace(0.0, 1.0, resolution)
    ys = np.linspace(0.0, 1.0, resolution)
    mask = np.ones((resolution, resolution), dtype=bool)
    nu = lid_velocity * 1.0 / reynolds
    wall = ldc_wall_distance(xs, ys)

    viscosity_model = None
    if turbulent:
        def viscosity_model(u, v, dx, dy, mask_):
            return zero_eq_viscosity_field(u, v, wall, max_distance=0.5,
                                           dx=dx, dy=dy)

    def apply_bcs(u, v, p):
        u[0, :] = 0.0
        u[-1, :] = lid_velocity
        u[:, 0] = 0.0
        u[:, -1] = 0.0
        v[0, :] = v[-1, :] = 0.0
        v[:, 0] = v[:, -1] = 0.0
        # pressure: zero-gradient walls, pinned corner for gauge
        p[0, :] = p[1, :]
        p[-1, :] = p[-2, :]
        p[:, 0] = p[:, 1]
        p[:, -1] = p[:, -2]
        p[0, 0] = 0.0

    solver = ACMSolver(xs, ys, mask, nu=nu,
                       viscosity_model=viscosity_model)
    result = solver.solve(apply_bcs, velocity_scale=lid_velocity,
                          max_steps=max_steps, tol=tol)
    dx = xs[1] - xs[0]
    result.nu_t = zero_eq_viscosity_field(result.u, result.v, wall,
                                          max_distance=0.5, dx=dx, dy=dx)
    return result
