"""Disk cache for expensive reference solutions.

The LDC/annulus reference fields take tens of seconds to converge; the
experiment harness computes them once per (problem, parameters) key and
reuses the ``.npz`` on subsequent runs.  Set ``REPRO_CACHE_DIR`` to relocate
the cache (defaults to ``.repro_cache`` in the working directory).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

__all__ = ["cache_dir", "get_or_compute"]


def cache_dir():
    """Directory holding cached arrays (created on demand)."""
    root = Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))
    root.mkdir(parents=True, exist_ok=True)
    return root


def get_or_compute(key, builder):
    """Load the dict of arrays cached under ``key`` or build and store it.

    Parameters
    ----------
    key:
        Filesystem-safe cache key.
    builder:
        Zero-argument callable returning a ``dict[str, np.ndarray]``.
    """
    path = cache_dir() / f"{key}.npz"
    if path.exists():
        with np.load(path) as data:
            return {name: data[name] for name in data.files}
    arrays = builder()
    np.savez_compressed(path, **arrays)
    return arrays
