"""Reference annular-ring flow (paper §4.2's validation data).

Geometry per the Modulus example the paper benchmarks: a 2-m-wide channel
that opens into a circular chamber of radius 2 containing a concentric inner
cylinder of parameterized radius ``r_i`` — 'flow from an inlet to an outlet
through a symmetrical annular ring'.  Laminar, ``nu = 0.1``, parabolic inlet
with peak velocity 1.5 m/s.

Solved with the artificial-compressibility core on a masked Cartesian grid;
wall pressure is extrapolated from fluid neighbours so the staircase walls
carry a zero normal pressure gradient.
"""

from __future__ import annotations

import numpy as np

from .acm import ACMSolver

__all__ = ["annulus_mask", "solve_annulus", "ANNULUS_DEFAULTS"]

#: Geometry constants shared with the PINN problem definition.
ANNULUS_DEFAULTS = {
    "channel_half_width": 1.0,
    "outer_radius": 2.0,
    "x_min": -5.0,
    "x_max": 5.0,
    "inlet_peak_velocity": 1.5,
    "nu": 0.1,
}


def annulus_mask(xs, ys, inner_radius, outer_radius=2.0,
                 channel_half_width=1.0):
    """Boolean fluid mask of the channel + ring domain."""
    gx, gy = np.meshgrid(xs, ys)
    in_channel = np.abs(gy) <= channel_half_width
    r2 = gx ** 2 + gy ** 2
    in_chamber = r2 <= outer_radius ** 2
    in_hole = r2 < inner_radius ** 2
    return (in_channel | in_chamber) & ~in_hole


def _extrapolate_wall_pressure(p, mask):
    """Copy the mean fluid-neighbour pressure onto wall cells (in place)."""
    fluid = mask.astype(np.float64)
    weighted = np.zeros_like(p)
    counts = np.zeros_like(p)
    for axis, shift in ((0, 1), (0, -1), (1, 1), (1, -1)):
        weighted += np.roll(p * fluid, shift, axis=axis)
        counts += np.roll(fluid, shift, axis=axis)
    wall = (~mask) & (counts > 0)
    p[wall] = weighted[wall] / counts[wall]


def solve_annulus(inner_radius=1.0, nx=201, ny=81, nu=0.1,
                  inlet_peak_velocity=1.5, max_steps=30000, tol=5e-5):
    """Steady laminar flow through the annular-ring domain.

    Parameters
    ----------
    inner_radius:
        The parameterized inner radius ``r_i`` (paper: 0.75 to 1.1, with
        validation at 1.0 / 0.875 / 0.75).
    nx, ny:
        Grid resolution over ``[-5, 5] x [-2, 2]``.

    Returns
    -------
    ACMResult
    """
    cfg = ANNULUS_DEFAULTS
    xs = np.linspace(cfg["x_min"], cfg["x_max"], nx)
    ys = np.linspace(-cfg["outer_radius"], cfg["outer_radius"], ny)
    mask = annulus_mask(xs, ys, inner_radius, cfg["outer_radius"],
                        cfg["channel_half_width"])
    half = cfg["channel_half_width"]
    inlet_profile = inlet_peak_velocity * np.maximum(
        0.0, 1.0 - (ys / half) ** 2)
    inlet_rows = np.abs(ys) <= half

    def apply_bcs(u, v, p):
        u[~mask] = 0.0
        v[~mask] = 0.0
        # inlet: parabolic u, v = 0, zero-gradient p
        u[inlet_rows, 0] = inlet_profile[inlet_rows]
        v[inlet_rows, 0] = 0.0
        p[:, 0] = p[:, 1]
        # outlet: zero-gradient velocity, p = 0
        u[:, -1] = u[:, -2]
        v[:, -1] = v[:, -2]
        p[:, -1] = 0.0
        _extrapolate_wall_pressure(p, mask)

    solver = ACMSolver(xs, ys, mask, nu=nu)
    return solver.solve(apply_bcs, velocity_scale=inlet_peak_velocity,
                        max_steps=max_steps, tol=tol)
