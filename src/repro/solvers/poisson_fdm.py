"""Direct finite-difference Poisson solver (quickstart validation)."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

__all__ = ["solve_poisson_dirichlet"]


def solve_poisson_dirichlet(source, resolution=65, bounds=(0.0, 1.0)):
    """Solve ``laplace(u) = f`` on a square with homogeneous Dirichlet BCs.

    Parameters
    ----------
    source:
        Callable ``(x_grid, y_grid) -> f`` evaluated on the interior grid.
    resolution:
        Grid points per side (including boundaries).
    bounds:
        Domain interval used for both axes.

    Returns
    -------
    ``(xs, ys, u)`` with ``u`` of shape ``(resolution, resolution)``.
    """
    lo, hi = bounds
    xs = np.linspace(lo, hi, resolution)
    ys = np.linspace(lo, hi, resolution)
    h = xs[1] - xs[0]
    m = resolution - 2
    gx, gy = np.meshgrid(xs[1:-1], ys[1:-1])
    f = np.asarray(source(gx, gy), dtype=np.float64).ravel()

    main = -4.0 * np.ones(m * m)
    east = np.ones(m * m)
    east[np.arange(1, m * m + 1) % m == 0] = 0.0
    west = np.ones(m * m)
    west[np.arange(m * m) % m == 0] = 0.0
    lap = sp.diags([main, east[:-1], west[1:], np.ones(m * m - m),
                    np.ones(m * m - m)],
                   [0, 1, -1, m, -m], format="csc") / h ** 2
    u_inner = spla.spsolve(lap, f)
    u = np.zeros((resolution, resolution))
    u[1:-1, 1:-1] = u_inner.reshape(m, m)
    return xs, ys, u
